"""Batched compilation sessions: production-style throughput.

A :class:`CompilerSession` turns the one-shot :func:`repro.compile` call
into a service-shaped API:

* **batching** — ``compile_many(workloads, targets, parallel=N)`` fans
  the (workload x target) grid across a process pool and returns results
  in input order;
* **per-target deadlines** — a budget table converts runaway compilers
  (Geyser/DPQA beyond 20 variables, §8.2) into ``timed_out`` rows instead
  of hung workers;
* **result caching** — an in-memory map plus an optional on-disk JSON
  cache keyed by (target, workload content, options), so repeated sweeps
  re-read instead of recompile.

Errors never propagate out of a session; they become result rows with
``error`` set, the contract a long-running service needs.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Iterable, Sequence

from ..exceptions import TargetError
from ..perf import Profiler
from ..qaoa.builder import QaoaParameters
from ..telemetry.trace import (
    Tracer,
    adopt_context,
    current_context,
    current_tracer,
    pop_tracer,
    push_tracer,
    span as _span,
)
from .base import Target
from .registry import get_target, resolve_target_name
from .result import CompilationResult
from .workload import Workload, coerce_workload


def _fingerprint(*parts) -> str:
    payload = repr(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def _canonical_device(device):
    """Validate a device argument for a sweep cell.

    Accepts registry names and :class:`~repro.devices.DeviceProfile`
    instances (whose deterministic repr becomes part of the cache
    fingerprint); anything else is rejected up front rather than deep in
    a worker process.
    """
    if device is None or isinstance(device, str):
        return device
    from ..devices.profile import DeviceProfile

    if isinstance(device, DeviceProfile):
        return device
    raise TargetError(
        f"devices entries must be names or DeviceProfile instances, "
        f"got {type(device).__name__}"
    )


def compile_spec(spec: tuple) -> CompilationResult:
    """Compile one ``(workload, target, target_options, parameters,
    budget, options[, simulate[, analyze]])`` spec tuple into a result
    row.

    Module-level so specs pickle cleanly into a process pool; this is the
    shared unit of work behind ``CompilerSession.compile_many`` and the
    :mod:`repro.service` worker shards.  The optional seventh element is
    a canonical simulate-options dict (see
    :func:`repro.sim.canonical_sim_options`): the compiled artifact is
    then executed on the noise-aware simulator and the execution payload
    attached to the result.  The optional eighth element is a canonical
    analyze-options dict (see
    :func:`repro.analysis.canonical_analyze_options`): the artifact is
    statically verified by the wLint analyzer and the report attached as
    ``result.analysis``.  Errors never propagate — they become result
    rows, the sweep/service contract.
    """
    workload, target_name, target_options, parameters, budget, options, *rest = spec
    simulate = rest[0] if rest else None
    analyze = rest[1] if len(rest) > 1 else None
    with _span(f"compile.{target_name}", workload=workload.name):
        return _compile_spec_body(
            workload, target_name, target_options, parameters, budget,
            options, simulate, analyze,
        )


def _compile_spec_body(
    workload, target_name, target_options, parameters, budget,
    options, simulate, analyze,
) -> CompilationResult:
    try:
        target = get_target(target_name, **(target_options or {}))
    except Exception as exc:  # noqa: BLE001 — sessions report, never crash
        device = (target_options or {}).get("device")
        return CompilationResult(
            target=target_name,
            workload=workload.name,
            num_qubits=workload.num_qubits,
            num_clauses=workload.num_clauses,
            device=device if isinstance(device, str) else getattr(device, "name", None),
            error=f"{type(exc).__name__}: {exc}",
        )
    result = target.compile(
        workload,
        parameters=parameters,
        budget_seconds=budget,
        on_error="result",
        **options,
    )
    if simulate and result.succeeded:
        _simulate_row(result, workload, simulate)
    # An empty dict is the canonical "analyze with defaults", so the
    # gate is on presence, not truthiness.
    if analyze is not None and result.succeeded:
        _analyze_row(result, analyze)
    return result


def _simulate_row(result: CompilationResult, workload: Workload, simulate) -> None:
    """Attach a simulated execution to a sweep row (errors become rows)."""
    from ..sim import attach_simulation

    try:
        attach_simulation(result, workload=workload, options=simulate)
    except Exception as exc:  # noqa: BLE001 — sweeps report, never crash
        result.error = f"{type(exc).__name__}: {exc}"


def _analyze_row(result: CompilationResult, analyze) -> None:
    """Attach a static-analysis report to a sweep row (errors become rows)."""
    from ..analysis import attach_analysis

    try:
        attach_analysis(result, options=analyze)
    except Exception as exc:  # noqa: BLE001 — sweeps report, never crash
        result.error = f"{type(exc).__name__}: {exc}"


def traced_compile_spec(payload: tuple) -> tuple[CompilationResult, list[dict]]:
    """:func:`compile_spec` under a worker-local tracer.

    ``payload`` is ``(ctx, spec)`` where ``ctx`` is the submitting
    side's span context (:func:`repro.telemetry.current_context`).  The
    worker — a pool process, an executor thread, or the caller itself —
    records its spans into a fresh :class:`~repro.telemetry.Tracer`
    parented on ``ctx``, and ships them back by value for the parent to
    :meth:`~repro.telemetry.Tracer.ingest`; that is how one trace
    stitches across process boundaries.  Only dispatched when tracing is
    enabled; the untraced fan-out keeps calling :func:`compile_spec`
    directly.
    """
    ctx, spec = payload
    tracer = Tracer()
    token = push_tracer(tracer)
    try:
        with adopt_context(ctx):
            result = compile_spec(spec)
    finally:
        pop_tracer(token)
    return result, tracer.export()


class CompilerSession:
    """A reusable, cached, batched compilation context.

    Parameters
    ----------
    budgets:
        Per-target compile budgets in seconds, e.g. ``{"dpqa": 60.0}``.
        Targets without an entry use their own default budget.
    parameters:
        QAOA angles applied to every compilation in the session.
    cache_dir:
        When set, successful and timed-out results are persisted as JSON
        under this directory and reloaded on cache hits — sweeps resume
        across processes and sessions.
    target_options:
        Per-target factory options, e.g. ``{"fpqa": {"hardware": hw}}``.
    profiler:
        A :class:`repro.perf.Profiler` accumulating the session's cache
        accounting (one is created when omitted).  Every result-cache
        lookup records a hit or miss under ``session.results``, and
        batch-internal duplicate cells record under ``session.dedup`` —
        identically on the serial and process-pool paths, which the
        regression suite pins.

    Cached results are shared objects: repeat lookups return the same
    :class:`CompilationResult` instance (with ``cached`` flipped to
    ``True``), so treat results as read-only.
    """

    def __init__(
        self,
        budgets: dict[str, float] | None = None,
        parameters: QaoaParameters | None = None,
        cache_dir: str | Path | None = None,
        target_options: dict[str, dict] | None = None,
        profiler: Profiler | None = None,
    ):
        self.budgets = dict(budgets or {})
        self.parameters = parameters
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.target_options = {k: dict(v) for k, v in (target_options or {}).items()}
        self.profiler = profiler if profiler is not None else Profiler()
        self._memory: dict[tuple, CompilationResult] = {}
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _target_options_for(self, target_name: str, device=None) -> dict:
        """Factory options for one cell: session defaults plus the device."""
        options = dict(self.target_options.get(target_name, {}))
        if device is not None:
            options["device"] = device
        return options

    def _key(
        self,
        workload: Workload,
        target_name: str,
        options: dict,
        target_config=None,
        device=None,
    ) -> tuple:
        """Cache identity of one cell.

        Everything that can change the output is part of the key: the
        workload content, compile options, QAOA parameters, the target's
        own configuration (factory options, the device profile, or the
        attributes of a caller-supplied instance), and the budget — a
        timed-out row must not shadow a retry under a bigger budget.
        """
        if target_config is None:
            target_config = sorted(
                self._target_options_for(target_name, device).items()
            )
        return (
            target_name,
            workload.cache_key(),
            _fingerprint(
                self.parameters,
                sorted(options.items()),
                target_config,
                self.budgets.get(target_name),
            ),
        )

    def _cache_path(self, key: tuple) -> Path | None:
        if self.cache_dir is None:
            return None
        target_name, workload_key, fingerprint = key
        return self.cache_dir / f"{target_name}--{workload_key}--{fingerprint}.json"

    def _cache_get(self, key: tuple) -> CompilationResult | None:
        if key in self._memory:
            result = self._memory[key]
            result.cached = True
            self.profiler.hit("session.results")
            return result
        path = self._cache_path(key)
        if path is not None and path.exists():
            try:
                result = CompilationResult.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except (ValueError, KeyError, OSError):
                self.profiler.miss("session.results")
                return None  # stale or corrupt entry: recompile
            self._memory[key] = result
            self.profiler.hit("session.results")
            return result
        self.profiler.miss("session.results")
        return None

    def _cache_put(self, key: tuple, result: CompilationResult) -> None:
        # Error rows are not cached at all — in memory or on disk — so a
        # transient failure (worker death, flaky env) retries on the next
        # call instead of being served back forever.
        if result.error is not None:
            return
        self._memory[key] = result
        path = self._cache_path(key)
        if path is not None:
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(
                json.dumps(result.to_dict(), indent=1), encoding="utf-8"
            )
            os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _spec(
        self,
        workload: Workload,
        target_name: str,
        options: dict,
        device=None,
        simulate=None,
        analyze=None,
    ) -> tuple:
        spec = (
            workload,
            target_name,
            self._target_options_for(target_name, device),
            self.parameters,
            self.budgets.get(target_name),
            options,
        )
        if analyze is not None:
            return spec + (simulate, analyze)
        return spec + (simulate,) if simulate else spec

    @staticmethod
    def _canonical_simulate(simulate):
        """Normalize ``simulate=`` once per call (it keys the cache)."""
        if not simulate:
            return None
        from ..sim import canonical_sim_options

        return canonical_sim_options(simulate)

    @staticmethod
    def _canonical_analyze(analyze):
        """Normalize ``analyze=`` once per call (it keys the cache)."""
        if not analyze:
            return None
        from ..analysis import canonical_analyze_options

        return canonical_analyze_options(analyze)

    @staticmethod
    def _key_options(options: dict, simulate, analyze=None) -> dict:
        """Cache-key view of the compile options.

        The simulate/analyze options ride inside the fingerprint under
        reserved keys, so a simulated or linted cell never shares a
        cache slot with its compile-only twin (or with different
        shots/noise/seed).
        """
        if not simulate and analyze is None:
            return options
        keyed = dict(options)
        if simulate:
            keyed["simulate"] = tuple(sorted(simulate.items()))
        if analyze is not None:
            keyed["analyze"] = tuple(sorted(analyze.items()))
        return keyed

    def compile(
        self,
        workload,
        target: str | Target = "fpqa",
        device=None,
        simulate=None,
        analyze=None,
        **options,
    ) -> CompilationResult:
        """Compile one cell (cached; failures become result rows).

        ``simulate`` executes the compiled artifact on the noise-aware
        simulator (see :func:`repro.compile`); ``analyze`` statically
        verifies it with the wLint analyzer.  Both payloads are part of
        the cached row.
        """
        resolved = coerce_workload(workload)
        device = _canonical_device(device)
        simulate = self._canonical_simulate(simulate)
        analyze = self._canonical_analyze(analyze)
        if isinstance(target, Target):
            if device is not None:
                raise TargetError(
                    "device= is only accepted with a target *name*; "
                    "configure the instance directly instead"
                )
            # Instances bypass the registry; their attributes (hardware,
            # seeds, wrapped compilers) become the target_config part of
            # the key so differently-configured instances never share a
            # cache cell.  Default object reprs make such keys unstable
            # across processes — a cache miss, never a wrong hit.
            name = target.name
            key = self._key(
                resolved,
                name,
                self._key_options(options, simulate, analyze),
                target_config=sorted(vars(target).items()),
            )
            hit = self._cache_get(key)
            if hit is not None:
                return hit
            result = target.compile(
                resolved,
                parameters=self.parameters,
                budget_seconds=self.budgets.get(name),
                on_error="result",
                **options,
            )
            if simulate and result.succeeded:
                _simulate_row(result, resolved, simulate)
            if analyze is not None and result.succeeded:
                _analyze_row(result, analyze)
            self._cache_put(key, result)
            return result
        name = resolve_target_name(target)
        key = self._key(
            resolved,
            name,
            self._key_options(options, simulate, analyze),
            device=device,
        )
        hit = self._cache_get(key)
        if hit is not None:
            return hit
        result = compile_spec(
            self._spec(
                resolved, name, options,
                device=device, simulate=simulate, analyze=analyze,
            )
        )
        self._cache_put(key, result)
        return result

    def compile_many(
        self,
        workloads: Iterable,
        targets: str | Sequence[str] = "fpqa",
        parallel: int = 1,
        devices: Sequence | None = None,
        simulate=None,
        analyze=None,
        **options,
    ) -> list[CompilationResult]:
        """Compile every (workload, target[, device]) cell, in input order.

        The job list is workload-major: for each workload, every target in
        ``targets``, and — when ``devices`` is given — every device per
        target; the returned list matches that order exactly regardless
        of ``parallel``.  With ``parallel > 1`` cache misses are fanned
        across a process pool; hits are served without touching the pool
        at all.  ``devices`` entries are registered profile names (or
        profiles); only device-aware targets (fpqa, superconducting)
        accept them — other combinations become error rows, the sweep
        contract.  ``simulate`` additionally executes every successful
        cell on the noise-aware simulator (same seed per cell, so the
        grid is reproducible), and ``analyze`` statically verifies every
        successful cell with the wLint analyzer.
        """
        with _span("session.compile_many", parallel=parallel):
            return self._compile_many(
                workloads, targets, parallel, devices, simulate, analyze,
                **options,
            )

    def _compile_many(
        self, workloads, targets, parallel, devices, simulate, analyze,
        **options,
    ) -> list[CompilationResult]:
        simulate = self._canonical_simulate(simulate)
        analyze = self._canonical_analyze(analyze)
        target_names = (
            [targets] if isinstance(targets, str) else list(targets)
        )
        device_list = (
            [None] if devices is None else [_canonical_device(d) for d in devices]
        )
        jobs: list[tuple[Workload, str, object]] = []
        for workload in workloads:
            resolved = coerce_workload(workload)
            for target in target_names:
                for device in device_list:
                    jobs.append((resolved, resolve_target_name(target), device))

        results: list[CompilationResult | None] = [None] * len(jobs)
        misses: list[int] = []
        keys: list[tuple] = []
        for index, (workload, name, device) in enumerate(jobs):
            key = self._key(
                workload,
                name,
                self._key_options(options, simulate, analyze),
                device=device,
            )
            keys.append(key)
            hit = self._cache_get(key)
            if hit is not None:
                results[index] = hit
            else:
                misses.append(index)

        if not misses:
            return results  # type: ignore[return-value]

        # A batch may name the same (workload, target) cell twice; compile
        # it once and fan the result out.  The dedup accounting happens
        # here — before the serial/pool split — so both execution paths
        # record identical counters by construction.
        first_for_key: dict[tuple, int] = {}
        duplicate_of: dict[int, int] = {}
        submit: list[int] = []
        for index in misses:
            if keys[index] in first_for_key:
                duplicate_of[index] = first_for_key[keys[index]]
                self.profiler.hit("session.dedup")
            else:
                first_for_key[keys[index]] = index
                submit.append(index)
                self.profiler.miss("session.dedup")

        if parallel <= 1 or len(submit) == 1:
            if parallel > 1:
                # A one-job batch skips the process pool (spinning one up
                # to run a single spec only adds overhead); count the
                # bypass so the fallback is observable, not silent.
                self.profiler.add("session.pool_bypass", 0.0)
            for index in submit:
                workload, name, device = jobs[index]
                result = compile_spec(
                    self._spec(
                        workload, name, options,
                        device=device, simulate=simulate, analyze=analyze,
                    )
                )
                self._cache_put(keys[index], result)
                results[index] = result
            for index, source in duplicate_of.items():
                results[index] = results[source]
            return results  # type: ignore[return-value]

        # With tracing enabled, misses go through traced_compile_spec so
        # each pool worker's spans come back parented on this batch's
        # ambient span; untraced batches pay nothing.
        tracer = current_tracer()
        ctx = current_context() if tracer is not None else None
        with ProcessPoolExecutor(max_workers=parallel) as pool:
            futures = {}
            for index in submit:
                spec = self._spec(
                    jobs[index][0], jobs[index][1], options,
                    device=jobs[index][2], simulate=simulate, analyze=analyze,
                )
                if tracer is not None:
                    future = pool.submit(traced_compile_spec, (ctx, spec))
                else:
                    future = pool.submit(compile_spec, spec)
                futures[future] = index
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    try:
                        result = future.result()
                        if tracer is not None:
                            result, worker_spans = result
                            tracer.ingest(worker_spans)
                    except Exception as exc:  # noqa: BLE001 — worker died
                        workload, name, device = jobs[index]
                        result = CompilationResult(
                            target=name,
                            workload=workload.name,
                            num_qubits=workload.num_qubits,
                            num_clauses=workload.num_clauses,
                            device=device
                            if isinstance(device, str)
                            else getattr(device, "name", None),
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    self._cache_put(keys[index], result)
                    results[index] = result
        for index, source in duplicate_of.items():
            results[index] = results[source]
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The session's cache accounting (see the ``profiler`` param)."""
        return self.profiler.profile()

    def clear_cache(self, disk: bool = False) -> None:
        """Drop in-memory results (and optionally the on-disk entries)."""
        self._memory.clear()
        if disk and self.cache_dir is not None:
            for path in self.cache_dir.glob("*.json"):
                path.unlink(missing_ok=True)
