"""String-keyed target registry: the retargeting seam.

Adding a backend is one call::

    from repro.targets import register_target

    register_target("my-device", MyDeviceTarget)

after which ``repro.compile(workload, target="my-device")``, the
``weaver compile --target my-device`` CLI, and
``CompilerSession.compile_many`` all reach it with no further wiring —
the property OpenQL and the MQT collection demonstrate for growing
compiler frameworks cheaply.
"""

from __future__ import annotations

from typing import Callable

from ..exceptions import TargetError, UnknownTargetError
from .base import Target
from .builtin import (
    AtomiqueTarget,
    DpqaTarget,
    FPQATarget,
    GeyserTarget,
    NoCompressFPQATarget,
    SuperconductingTarget,
)

_REGISTRY: dict[str, Callable[..., Target]] = {}
_ALIASES: dict[str, str] = {}


def register_target(
    name: str,
    factory: Callable[..., Target],
    aliases: tuple[str, ...] = (),
    replace: bool = False,
) -> None:
    """Register a target factory under ``name`` (plus optional aliases)."""
    if not replace and name in _REGISTRY:
        raise TargetError(f"target {name!r} is already registered")
    _REGISTRY[name] = factory
    for alias in aliases:
        _ALIASES[alias] = name


def resolve_target_name(name: str) -> str:
    """Canonical registry key for ``name`` (follows aliases)."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise UnknownTargetError(name, available=tuple(available_targets()))
    return canonical


def get_target(name: str | Target, **options) -> Target:
    """Instantiate a registered target (or pass an instance through)."""
    if isinstance(name, Target):
        if options:
            raise TargetError(
                "target options are only accepted with a target *name*; "
                f"got a {type(name).__name__} instance plus options {sorted(options)}"
            )
        return name
    return _REGISTRY[resolve_target_name(name)](**options)


def available_targets() -> list[str]:
    """Sorted canonical target names."""
    return sorted(_REGISTRY)


def target_info(name: str | None = None) -> list[dict]:
    """Describe one target, or all of them (the ``repro targets`` view).

    Uses class-level metadata when the factory exposes ``describe``
    (every :class:`Target` subclass does), so listing targets never
    constructs hardware backends; plain-function factories fall back to
    instantiating once.
    """
    names = [resolve_target_name(name)] if name else available_targets()
    return [
        _REGISTRY[key].describe()
        if hasattr(_REGISTRY[key], "describe")
        else _REGISTRY[key]().describe()
        for key in names
    ]


# ----------------------------------------------------------------------
# Built-in registrations.  "weaver" is an alias kept for the evaluation
# harness, whose figures label the FPQA path by the system's name.
# ----------------------------------------------------------------------
register_target("fpqa", FPQATarget, aliases=("weaver",))
register_target("fpqa-nocompress", NoCompressFPQATarget)
register_target("superconducting", SuperconductingTarget)
register_target("atomique", AtomiqueTarget)
register_target("geyser", GeyserTarget)
register_target("dpqa", DpqaTarget)
