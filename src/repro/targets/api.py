"""The one-call public entrypoint: ``repro.compile(workload, target=...)``.

Retargeting a workload is the difference of one string — a target picks
the pipeline, a device profile picks the machine::

    import repro

    formula = repro.satlib_instance("uf20-01")
    fpqa = repro.compile(formula, target="fpqa")
    sc = repro.compile(formula, target="superconducting")
    aquila = repro.compile(formula, target="fpqa", device="aquila-256")
"""

from __future__ import annotations

from ..qaoa.builder import QaoaParameters
from ..telemetry.trace import span as _span
from .base import Target
from .registry import get_target
from .result import CompilationResult
from .workload import coerce_workload


def compile(  # noqa: A001 — deliberate: the framework's verb
    workload,
    target: str | Target | None = None,
    parameters: QaoaParameters | None = None,
    budget_seconds: float | None = None,
    target_options: dict | None = None,
    device=None,
    simulate=None,
    analyze=None,
    **options,
) -> CompilationResult:
    """Compile ``workload`` for ``target`` and return the unified result.

    Parameters
    ----------
    workload:
        A :class:`~repro.targets.Workload`, :class:`~repro.CnfFormula`,
        :class:`~repro.QuantumCircuit`, OpenQASM source text, or a path to
        a ``.cnf``/``.qasm`` file.
    target:
        A registered target name (see :func:`repro.available_targets`) or
        a :class:`~repro.targets.Target` instance.  Defaults to ``"fpqa"``;
        when only ``device`` is given, the target matching the device's
        kind is used (a superconducting profile selects the
        ``superconducting`` pipeline).
    parameters:
        QAOA angles for formula workloads (default: the paper's heuristic
        single-layer pair).
    budget_seconds:
        Optional compile budget; exceeding it raises
        :class:`~repro.exceptions.CompilationTimeout`.
    target_options:
        Keyword arguments for the target factory (e.g. ``hardware=...``);
        only valid when ``target`` is a name.
    device:
        A registered device-profile name (see :func:`repro.list_devices`)
        or a :class:`~repro.devices.DeviceProfile`; shorthand for
        ``target_options={"device": ...}``.
    simulate:
        ``True`` or an options dict (``shots``, ``noise``, ``seed``,
        ``max_trajectories``) to execute the compiled artifact on the
        noise-aware simulator (:mod:`repro.sim`); the execution payload
        lands on ``result.execution``.
    analyze:
        ``True`` (or ``{}``) to statically verify the compiled artifact
        with the wLint analyzer (:mod:`repro.analysis`); the report
        payload lands on ``result.analysis``.
    options:
        Target-specific compile options (e.g. ``measure=False``,
        ``compression=True`` for the FPQA path).

    Raises on failure; use :class:`~repro.CompilerSession` for the
    sweep-style behavior that converts failures into result rows.
    """
    resolved_options = dict(target_options or {})
    if device is not None:
        from ..devices.registry import resolve_device
        from ..exceptions import TargetError

        if "device" in resolved_options:
            raise TargetError(
                "pass the device either as device= or inside "
                "target_options, not both"
            )
        profile = resolve_device(device)
        resolved_options["device"] = profile
        if target is None:
            target = (
                "superconducting"
                if profile.kind == "superconducting"
                else "fpqa"
            )
    resolved = get_target(target if target is not None else "fpqa", **resolved_options)
    coerced = coerce_workload(workload)
    # One root span covers the whole request — compile plus the optional
    # simulate/analyze attachments — so a traced `compile(simulate=True)`
    # renders as a single tree (pass spans nest via the Profiler hook,
    # sim phases via the executor's own spans).
    with _span(f"compile.{resolved.name}", workload=coerced.name):
        result = resolved.compile(
            coerced,
            parameters=parameters,
            budget_seconds=budget_seconds,
            **options,
        )
        if simulate:
            from ..sim import attach_simulation

            attach_simulation(result, workload=coerced, options=simulate)
        if analyze:
            from ..analysis import attach_analysis

            attach_analysis(result, options=analyze)
    return result
