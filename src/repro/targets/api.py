"""The one-call public entrypoint: ``repro.compile(workload, target=...)``.

Retargeting a workload is the difference of one string::

    import repro

    formula = repro.satlib_instance("uf20-01")
    fpqa = repro.compile(formula, target="fpqa")
    sc = repro.compile(formula, target="superconducting")
"""

from __future__ import annotations

from ..qaoa.builder import QaoaParameters
from .base import Target
from .registry import get_target
from .result import CompilationResult
from .workload import coerce_workload


def compile(  # noqa: A001 — deliberate: the framework's verb
    workload,
    target: str | Target = "fpqa",
    parameters: QaoaParameters | None = None,
    budget_seconds: float | None = None,
    target_options: dict | None = None,
    **options,
) -> CompilationResult:
    """Compile ``workload`` for ``target`` and return the unified result.

    Parameters
    ----------
    workload:
        A :class:`~repro.targets.Workload`, :class:`~repro.CnfFormula`,
        :class:`~repro.QuantumCircuit`, OpenQASM source text, or a path to
        a ``.cnf``/``.qasm`` file.
    target:
        A registered target name (see :func:`repro.available_targets`) or
        a :class:`~repro.targets.Target` instance.
    parameters:
        QAOA angles for formula workloads (default: the paper's heuristic
        single-layer pair).
    budget_seconds:
        Optional compile budget; exceeding it raises
        :class:`~repro.exceptions.CompilationTimeout`.
    target_options:
        Keyword arguments for the target factory (e.g. ``hardware=...``);
        only valid when ``target`` is a name.
    options:
        Target-specific compile options (e.g. ``measure=False``,
        ``compression=True`` for the FPQA path).

    Raises on failure; use :class:`~repro.CompilerSession` for the
    sweep-style behavior that converts failures into result rows.
    """
    resolved = get_target(target, **(target_options or {}))
    return resolved.compile(
        coerce_workload(workload),
        parameters=parameters,
        budget_seconds=budget_seconds,
        **options,
    )
