"""Small linear-algebra helpers shared across the library.

Conventions
-----------
* Statevectors use *little-endian* qubit ordering: basis index ``b`` encodes
  qubit ``i`` in bit ``i`` (``b = sum(x_i << i)``), matching Qiskit.
* Gate matrices are written in *gate-local big-endian* order: for a gate
  applied to qubits ``(q0, q1, ..)``, ``q0`` is the most significant bit of
  the gate-matrix index.  This is the textbook convention, e.g. ``CX`` with
  control listed first is ``|c t> -> |c, t xor c>``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .exceptions import SimulationError

#: Largest qubit count for which we build dense 2^n x 2^n unitaries.
MAX_UNITARY_QUBITS = 13

#: Largest qubit count for which we build dense statevectors.
MAX_STATEVECTOR_QUBITS = 24

_ATOL = 1e-9


def kron_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of ``matrices`` left-to-right."""
    out = np.array([[1.0 + 0.0j]])
    for mat in matrices:
        out = np.kron(out, mat)
    return out


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Whether ``matrix`` is unitary within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    dim = matrix.shape[0]
    return bool(np.allclose(matrix.conj().T @ matrix, np.eye(dim), atol=atol))


def global_phase_between(u: np.ndarray, v: np.ndarray, atol: float = 1e-8) -> complex | None:
    """Return phase ``p`` with ``u ~= p * v`` or ``None`` if not proportional.

    Used for equivalence-up-to-global-phase checks in the wChecker.
    """
    u = np.asarray(u, dtype=complex)
    v = np.asarray(v, dtype=complex)
    if u.shape != v.shape:
        return None
    flat_v = v.ravel()
    idx = int(np.argmax(np.abs(flat_v)))
    if abs(flat_v[idx]) < atol:
        # v is (numerically) zero; equal only if u is too.
        return 1.0 + 0.0j if np.allclose(u, 0, atol=atol) else None
    phase = u.ravel()[idx] / flat_v[idx]
    if abs(abs(phase) - 1.0) > 1e-6:
        return None
    if np.allclose(u, phase * v, atol=atol):
        return complex(phase)
    return None


def allclose_up_to_global_phase(u: np.ndarray, v: np.ndarray, atol: float = 1e-8) -> bool:
    """Whether two operators/states are equal up to a global phase."""
    return global_phase_between(u, v, atol=atol) is not None


def _gate_axes(qubits: Sequence[int], num_qubits: int) -> list[int]:
    """Tensor axes for ``qubits`` when a state is reshaped to ``(2,)*n``.

    With little-endian state ordering, reshaping a ``2**n`` vector to
    ``(2,)*n`` puts qubit ``n-1`` on axis 0 and qubit 0 on axis ``n-1``.
    Gate-matrix index bit 0 of the gate (``q0``, most significant) must be
    contracted against the axis of ``q0``.
    """
    return [num_qubits - 1 - q for q in qubits]


def apply_gate_to_state(
    matrix: np.ndarray, qubits: Sequence[int], state: np.ndarray, num_qubits: int
) -> np.ndarray:
    """Apply a k-qubit ``matrix`` on ``qubits`` to a ``2**n`` statevector."""
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise SimulationError(
            f"matrix shape {matrix.shape} does not match {k} qubit(s)"
        )
    if len(set(qubits)) != k:
        raise SimulationError(f"duplicate qubits in {tuple(qubits)}")
    tensor = np.asarray(state, dtype=complex).reshape((2,) * num_qubits)
    axes = _gate_axes(qubits, num_qubits)
    gate_tensor = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    moved = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), axes))
    # tensordot puts the gate's output axes first; move them back in place.
    moved = np.moveaxis(moved, list(range(k)), axes)
    return moved.reshape(-1)

def apply_gate_to_unitary(
    matrix: np.ndarray, qubits: Sequence[int], unitary: np.ndarray, num_qubits: int
) -> np.ndarray:
    """Left-multiply a gate on ``qubits`` into an accumulated ``unitary``.

    ``unitary`` has shape ``(2**n, 2**n)``; each column is treated as a
    statevector and the gate applied to all of them at once.
    """
    k = len(qubits)
    dim = 2**num_qubits
    if matrix.shape != (2**k, 2**k):
        raise SimulationError(
            f"matrix shape {matrix.shape} does not match {k} qubit(s)"
        )
    tensor = np.asarray(unitary, dtype=complex).reshape((2,) * num_qubits + (dim,))
    axes = _gate_axes(qubits, num_qubits)
    gate_tensor = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    moved = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), axes))
    moved = np.moveaxis(moved, list(range(k)), axes)
    return moved.reshape(dim, dim)


def expand_gate(matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Dense ``2**n x 2**n`` embedding of ``matrix`` acting on ``qubits``."""
    if num_qubits > MAX_UNITARY_QUBITS:
        raise SimulationError(
            f"refusing to build a dense unitary on {num_qubits} qubits "
            f"(limit {MAX_UNITARY_QUBITS})"
        )
    eye = np.eye(2**num_qubits, dtype=complex)
    return apply_gate_to_unitary(matrix, qubits, eye, num_qubits)


def random_statevector(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """Haar-ish random normalized statevector (Gaussian method)."""
    vec = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
    return vec / np.linalg.norm(vec)


def fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """State fidelity ``|<a|b>|^2`` of two pure states."""
    return float(abs(np.vdot(state_a, state_b)) ** 2)


def projector_phase_polynomial(num_qubits: int) -> np.ndarray:
    """Diagonal of ``Z`` on each basis state for ``num_qubits`` qubits.

    Returns an array of shape ``(2**n, n)`` whose entry ``[b, i]`` is the
    eigenvalue ``(-1)**bit_i(b)`` of ``Z_i``.  Useful to evaluate diagonal
    cost Hamiltonians without building matrices.
    """
    basis = np.arange(2**num_qubits)
    bits = (basis[:, None] >> np.arange(num_qubits)[None, :]) & 1
    return 1.0 - 2.0 * bits
