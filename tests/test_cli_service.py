"""CLI front door for the service: ``weaver serve`` / ``weaver submit``."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.sat import CnfFormula, to_dimacs

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture()
def cnf_file(tmp_path) -> Path:
    formula = CnfFormula.from_lists(
        [[1, -2, 3], [-1, 2, 4], [2, 3, -4]], num_vars=4, name="cli-svc"
    )
    path = tmp_path / "cli-svc.cnf"
    path.write_text(to_dimacs(formula), encoding="utf-8")
    return path


def test_submit_without_server_exits_2(tmp_path, cnf_file, capsys):
    rc = main(
        ["submit", str(cnf_file), "--socket", str(tmp_path / "absent.sock")]
    )
    assert rc == 2
    assert "weaver serve" in capsys.readouterr().err


def test_submit_without_input_or_op_exits_2(tmp_path, capsys):
    # Argument validation happens after connect; spin up nothing and use
    # a missing socket so the connect error dominates — then check the
    # pure-validation branch against a live server below.
    rc = main(["submit", "--socket", str(tmp_path / "absent.sock")])
    assert rc == 2


def test_serve_submit_round_trip(tmp_path, cnf_file):
    """Full subprocess loop: serve, submit twice, stats, shutdown."""
    socket = tmp_path / "weaver.sock"
    env = {**os.environ, "PYTHONPATH": REPO_SRC + os.pathsep + os.environ.get("PYTHONPATH", "")}
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", str(socket),
         "--shards", "1"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.time() + 30
        while not socket.exists():
            assert server.poll() is None, "server died during startup"
            assert time.time() < deadline, "server socket never appeared"
            time.sleep(0.05)

        out1 = tmp_path / "a.wqasm"
        rc = main(
            ["submit", str(cnf_file), "--socket", str(socket), "-o", str(out1)]
        )
        assert rc == 0
        assert "OPENQASM" in out1.read_text(encoding="utf-8")

        # Warm resubmission must be byte-identical output.
        out2 = tmp_path / "b.wqasm"
        rc = main(
            ["submit", str(cnf_file), "--socket", str(socket), "-o", str(out2)]
        )
        assert rc == 0
        assert out1.read_bytes() == out2.read_bytes()

        rc = main(["submit", "--stats", "--socket", str(socket)])
        assert rc == 0

        rc = main(["submit", "--shutdown", "--socket", str(socket)])
        assert rc == 0
        assert server.wait(timeout=30) == 0
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGINT)
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()


def test_submit_unknown_target_against_live_server(tmp_path, cnf_file, capsys):
    """User errors from the server come back as exit 2, not tracebacks."""
    import asyncio
    import threading

    from repro.service import serve

    socket = tmp_path / "weaver.sock"
    loop = asyncio.new_event_loop()
    ready = asyncio.Event()

    def run_server():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(
            serve(socket, shards=1, backend="inline", ready=ready)
        )

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    deadline = time.time() + 30
    while not socket.exists() and time.time() < deadline:
        time.sleep(0.02)
    assert socket.exists()
    try:
        rc = main(
            ["submit", str(cnf_file), "--socket", str(socket), "-t", "pixie"]
        )
        assert rc == 2
        assert "pixie" in capsys.readouterr().err
        rc = main(["submit", str(cnf_file), "--socket", str(socket)])
        assert rc == 0
    finally:
        rc = main(["submit", "--shutdown", "--socket", str(socket)])
        assert rc == 0
        thread.join(timeout=30)
        assert not thread.is_alive()
