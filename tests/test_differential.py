"""Cross-target differential conformance suite.

The cross-target analogue of ``test_cluster_equivalence.py``: a seeded
corpus of CNF workloads is compiled on **every registered target** (and,
for the device-aware targets, on every compatible built-in device), and
each cell must

* succeed,
* be wChecker-verified against its own native reference circuit when the
  target emits wQasm (using the *device's* hardware parameters, not the
  defaults),
* agree with every other target's native circuit up to unitary
  equivalence (all backends lower the same QAOA ansatz), and
* survive a stable JSON round trip of :class:`~repro.CompilationResult`
  (``to_dict -> from_dict -> to_dict`` is a fixed point — the property
  the artifact store's byte-identity contract rests on).

The corpus stays at <= 6 variables so dense unitary equivalence is exact
and the full grid runs in the fast lane.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.checker.unitary_check import EquivalenceMethod, equivalence_check
from repro.devices import DeviceProfile, list_devices
from repro.sat import random_ksat
from repro.targets import CompilerSession

#: Seeded corpus: (num_vars, num_clauses, seed).  Small enough for exact
#: unitary equivalence, varied enough to exercise coloring and layout.
CORPUS = (
    (4, 6, 11),
    (5, 8, 23),
    (6, 10, 47),
)

#: Budgets keep a regression from hanging the suite; generous enough
#: that every healthy target compiles a 6-variable formula instantly.
SESSION_BUDGETS = {name: 60.0 for name in repro.available_targets()}


def _corpus_formula(spec):
    num_vars, num_clauses, seed = spec
    return random_ksat(
        num_vars, num_clauses, seed=seed, name=f"diff-{num_vars}v-{seed}"
    )


@pytest.fixture(scope="module", params=CORPUS, ids=lambda s: f"{s[0]}v-s{s[2]}")
def grid(request):
    """All (target, device) cells of one corpus formula, compiled once."""
    formula = _corpus_formula(request.param)
    session = CompilerSession(budgets=SESSION_BUDGETS)
    cells: dict[tuple, repro.CompilationResult] = {}
    for target in repro.available_targets():
        cells[(target, None)] = session.compile(formula, target=target)
    for device in list_devices(kind="fpqa"):
        profile = repro.get_device(device)
        if profile.max_qubits is not None and profile.max_qubits < formula.num_vars:
            continue
        cells[("fpqa", device)] = session.compile(
            formula, target="fpqa", device=device
        )
    for device in list_devices(kind="superconducting"):
        cells[("superconducting", device)] = session.compile(
            formula, target="superconducting", device=device
        )
    return formula, cells


def _checker_hardware(result):
    """The hardware the program was compiled for (device or defaults)."""
    if result.device_profile is not None:
        return DeviceProfile.from_dict(result.device_profile).hardware
    return None


class TestDifferentialConformance:
    def test_every_cell_succeeds(self, grid):
        formula, cells = grid
        failures = {
            cell: result.error or "timed_out"
            for cell, result in cells.items()
            if not result.succeeded
        }
        assert not failures, f"failed cells for {formula.name}: {failures}"

    def test_shapes_agree_across_targets(self, grid):
        formula, cells = grid
        for cell, result in cells.items():
            assert result.num_qubits == formula.num_vars, cell
            assert result.num_clauses == formula.num_clauses, cell
            assert result.workload == formula.name, cell

    def test_wqasm_cells_are_checker_verified(self, grid):
        """Every emitted program implements its own reference circuit."""
        formula, cells = grid
        checked = 0
        for cell, result in cells.items():
            if result.program is None:
                continue
            report = repro.check_program(
                result.program,
                reference=result.native_circuit,
                hardware=_checker_hardware(result),
            )
            assert report.ok, (
                f"wChecker rejected {cell} for {formula.name}: "
                f"{report.operation_failures[:3]}"
            )
            checked += 1
        # fpqa, fpqa-nocompress, and every compatible FPQA device cell.
        assert checked >= 3

    def test_native_circuits_equivalent_across_targets(self, grid):
        """All backends lower the same ansatz: unitaries must agree."""
        formula, cells = grid
        natives = [
            (cell, result.native_circuit)
            for cell, result in cells.items()
            if result.native_circuit is not None
        ]
        assert len(natives) >= 3
        reference_cell, reference = natives[0]
        for cell, circuit in natives[1:]:
            same, method = equivalence_check(reference, circuit)
            assert method is EquivalenceMethod.UNITARY  # corpus is small
            assert same, (
                f"{cell} is not unitarily equivalent to {reference_cell} "
                f"for {formula.name}"
            )

    def test_device_cells_record_provenance(self, grid):
        _, cells = grid
        device_cells = [cell for cell in cells if cell[1] is not None]
        assert device_cells
        for cell in device_cells:
            result = cells[cell]
            assert result.device == cell[1]
            profile = DeviceProfile.from_dict(result.device_profile)
            assert profile.name == cell[1]

    def test_json_round_trip_is_stable(self, grid):
        """to_dict -> JSON -> from_dict -> to_dict is a fixed point."""
        _, cells = grid
        for cell, result in cells.items():
            first = result.to_dict()
            wire = json.loads(json.dumps(first))  # force JSON-safe types
            reborn = repro.CompilationResult.from_dict(wire)
            second = reborn.to_dict()
            assert second == first, f"unstable JSON round trip for {cell}"

    def test_round_trip_preserves_program_text(self, grid):
        _, cells = grid
        for cell, result in cells.items():
            if result.program is None:
                continue
            reborn = repro.CompilationResult.from_dict(
                json.loads(json.dumps(result.to_dict()))
            )
            assert reborn.program.to_wqasm() == result.program.to_wqasm(), cell

    def test_from_dict_rejects_unknown_schema(self, grid):
        _, cells = grid
        payload = next(iter(cells.values())).to_dict()
        payload["schema"] = 9999
        with pytest.raises(ValueError, match="schema"):
            repro.CompilationResult.from_dict(payload)
