"""Cross-cutting property tests (hypothesis) over the compiler stack.

These fuzz the substrate boundaries: QASM round-trips over random
circuits, SABRE routing correctness on random programs, wave-planning
invariants, and full Weaver compilations of random formulas.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, circuits_equivalent
from repro.circuits.random_circuits import random_circuit
from repro.passes import compile_formula, nativize_circuit, plan_waves
from repro.qasm import circuit_to_qasm, qasm_to_circuit
from repro.sat import random_ksat
from repro.superconducting import SabreRouter, grid_coupling


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(2, 5), st.integers(1, 30))
def test_qasm_roundtrip_random_circuits(seed, num_qubits, num_gates):
    """print(parse(c)) == c for arbitrary circuits (exact instruction match)."""
    circuit = random_circuit(num_qubits, num_gates, seed=seed)
    again = qasm_to_circuit(circuit_to_qasm(circuit))
    assert again == circuit


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6), st.integers(2, 5), st.integers(1, 20))
def test_nativize_random_circuits(seed, num_qubits, num_gates):
    """{U3, CZ} nativization preserves the unitary of random circuits."""
    circuit = random_circuit(num_qubits, num_gates, seed=seed)
    native = nativize_circuit(circuit)
    assert {i.name for i in native.instructions} <= {"u3", "cz"}
    assert circuits_equivalent(circuit, native)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6), st.integers(5, 25))
def test_sabre_random_2q_circuits_stay_legal(seed, num_gates):
    """Every 2q gate in a SABRE-routed circuit acts on coupled qubits."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(6)
    for _ in range(num_gates):
        a, b = rng.choice(6, size=2, replace=False)
        circuit.cz(int(a), int(b))
    coupling = grid_coupling(2, 3)
    routing = SabreRouter(coupling).route(circuit)
    for inst in routing.circuit.instructions:
        if inst.gate.is_unitary and len(inst.qubits) == 2:
            assert coupling.are_connected(*inst.qubits)
    # Layout bookkeeping stays a permutation.
    assert sorted(routing.final_layout) == sorted(routing.initial_layout)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(2, 30))
def test_wave_planning_invariants(seed, num_atoms):
    """Waves partition the move set; each wave is strictly x-ordered at
    both endpoints with the minimum column gap respected."""
    rng = np.random.default_rng(seed)
    min_gap = 5.0
    source_xs = rng.permutation(num_atoms) * 10.0
    sources = {a: (float(source_xs[a]), float(rng.integers(0, 3)) * 40.0) for a in range(num_atoms)}
    dests = {a: (a * 10.0, 200.0) for a in range(num_atoms)}
    waves = plan_waves(sources, dests, min_gap)
    moved = sorted(atom for wave in waves for atom in wave.atoms)
    assert moved == list(range(num_atoms))
    for wave in waves:
        for (x1, _), (x2, _) in zip(wave.sources, wave.sources[1:]):
            assert x2 - x1 >= min_gap - 1e-9
        for (x1, _), (x2, _) in zip(wave.destinations, wave.destinations[1:]):
            assert x2 - x1 >= min_gap - 1e-9


@pytest.mark.parametrize("seed", range(6, 10))
def test_weaver_random_formula_fuzz(seed):
    """Full pipeline fuzz: compile random 3-SAT, logical == reference.

    Complements the hypothesis suites with fixed-seed cases that exercise
    larger formulas (kept parametrized so failures name their seed).
    """
    rng = np.random.default_rng(seed)
    num_vars = int(rng.integers(4, 9))
    num_clauses = int(rng.integers(3, 12))
    k = int(rng.integers(1, 4))
    formula = random_ksat(num_vars, num_clauses, k=min(k, num_vars), seed=seed)
    result = compile_formula(formula, measure=False)
    assert circuits_equivalent(
        result.program.logical_circuit(), result.native_circuit
    )


@pytest.mark.parametrize("seed", range(3))
def test_checker_verifies_random_compilations(seed):
    """The wChecker signs off on every honestly-compiled random formula."""
    from repro.checker import check_program

    formula = random_ksat(6, 8, seed=100 + seed)
    result = compile_formula(formula, measure=False)
    report = check_program(result.program, reference=result.native_circuit)
    assert report.ok, report.operation_failures[:3]
