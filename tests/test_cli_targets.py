"""CLI: the target-aware compile command and the unified error handler."""

import pytest

from repro.cli import main
from repro.sat import to_dimacs


@pytest.fixture()
def cnf_file(tmp_path, tiny_formula):
    path = tmp_path / "tiny.cnf"
    path.write_text(to_dimacs(tiny_formula))
    return path


class TestTargetsCommand:
    def test_lists_all_targets(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        for name in ("fpqa", "fpqa-nocompress", "superconducting", "atomique",
                     "geyser", "dpqa"):
            assert name in out

    def test_single_target(self, capsys):
        assert main(["targets", "fpqa"]) == 0
        out = capsys.readouterr().out
        assert "clause-coloring" in out

    def test_unknown_target_is_user_error(self, capsys):
        assert main(["targets", "pixie"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCompileTarget:
    def test_default_target_emits_wqasm(self, cnf_file, tmp_path):
        out = tmp_path / "out.wqasm"
        assert main(["compile", str(cnf_file), "-o", str(out)]) == 0
        assert out.read_text().startswith("OPENQASM 3.0;")

    def test_explicit_target_flag(self, cnf_file, capsys):
        assert main(["compile", str(cnf_file), "--target", "superconducting"]) == 0
        captured = capsys.readouterr()
        assert "superconducting" in captured.err
        assert "eps:" in captured.out

    def test_unknown_target_is_user_error(self, cnf_file, capsys):
        assert main(["compile", str(cnf_file), "--target", "pixie"]) == 2
        err = capsys.readouterr().err
        assert "unknown target" in err

    def test_verify_rejected_for_gate_level_target(self, cnf_file, capsys):
        rc = main(["compile", str(cnf_file), "--target", "atomique", "--verify"])
        assert rc == 2


class TestDevicesCommand:
    def test_lists_all_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("rubidium-baseline", "aquila-256", "washington-127",
                     "zone-lite-16"):
            assert name in out

    def test_single_device_shows_params(self, capsys):
        assert main(["devices", "aquila-256"]) == 0
        out = capsys.readouterr().out
        assert "fidelity_cz" in out

    def test_unknown_device_is_user_error(self, capsys):
        assert main(["devices", "pixie-dust"]) == 2
        assert "unknown device" in capsys.readouterr().err


class TestCompileDevice:
    def test_device_flag(self, cnf_file, tmp_path, capsys):
        out = tmp_path / "out.wqasm"
        rc = main(["compile", str(cnf_file), "--device", "rubidium-nextgen",
                   "-o", str(out)])
        assert rc == 0
        assert "on rubidium-nextgen" in capsys.readouterr().err
        assert out.read_text().startswith("OPENQASM 3.0;")

    def test_device_infers_target(self, cnf_file, capsys):
        assert main(["compile", str(cnf_file), "--device", "heavyhex-23"]) == 0
        assert "superconducting" in capsys.readouterr().err

    def test_unknown_device_is_user_error(self, cnf_file, capsys):
        assert main(["compile", str(cnf_file), "--device", "pixie"]) == 2
        assert "unknown device" in capsys.readouterr().err

    def test_kind_mismatch_is_user_error(self, cnf_file, capsys):
        rc = main(["compile", str(cnf_file), "--target", "fpqa",
                   "--device", "washington-127"])
        assert rc == 2
        assert "fpqa device profile" in capsys.readouterr().err


class TestUnknownOptionRejection:
    def test_nocompress_rejects_compression_on(self, cnf_file, capsys):
        rc = main(["compile", str(cnf_file), "--target", "fpqa-nocompress",
                   "--compression", "on"])
        assert rc == 2
        assert "forces compression off" in capsys.readouterr().err

    def test_nocompress_accepts_compression_off(self, cnf_file, tmp_path):
        out = tmp_path / "out.wqasm"
        rc = main(["compile", str(cnf_file), "--target", "fpqa-nocompress",
                   "--compression", "off", "-o", str(out)])
        assert rc == 0

    def test_unknown_factory_option_is_target_error(self):
        import pytest

        from repro.exceptions import TargetError
        from repro.targets import get_target

        with pytest.raises(TargetError, match="does not support option"):
            get_target("fpqa", warp_drive=True)
        with pytest.raises(TargetError, match="does not support option"):
            get_target("superconducting", warp_drive=True)
        with pytest.raises(TargetError, match="atomique"):
            get_target("atomique", warp_drive=True)
        with pytest.raises(TargetError, match="device"):
            get_target("geyser", device="rubidium-baseline")


class TestErrorHandler:
    def test_missing_input_is_user_error(self, capsys):
        assert main(["compile", "/nonexistent/x.cnf"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_wqasm_is_user_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.wqasm"
        bad.write_bytes(b"\xff\xfe\x00 not text")
        assert main(["check", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_syntactically_broken_wqasm_is_user_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.wqasm"
        bad.write_text("this is not wqasm {{{")
        assert main(["check", str(bad)]) == 2

    def test_internal_error_exits_1(self, cnf_file, monkeypatch, capsys):
        import repro.cli as cli

        def boom(text, name="x"):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(cli, "parse_wqasm", boom)
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        assert cli.main(["check", str(cnf_file)]) == 1
        err = capsys.readouterr().err
        assert "internal error" in err
        assert "synthetic failure" in err

    def test_internal_error_reraises_under_debug(self, cnf_file, monkeypatch):
        import repro.cli as cli

        def boom(text, name="x"):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(cli, "parse_wqasm", boom)
        monkeypatch.setenv("REPRO_DEBUG", "1")
        with pytest.raises(RuntimeError):
            cli.main(["check", str(cnf_file)])
