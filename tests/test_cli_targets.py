"""CLI: the target-aware compile command and the unified error handler."""

import pytest

from repro.cli import main
from repro.sat import to_dimacs


@pytest.fixture()
def cnf_file(tmp_path, tiny_formula):
    path = tmp_path / "tiny.cnf"
    path.write_text(to_dimacs(tiny_formula))
    return path


class TestTargetsCommand:
    def test_lists_all_targets(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        for name in ("fpqa", "fpqa-nocompress", "superconducting", "atomique",
                     "geyser", "dpqa"):
            assert name in out

    def test_single_target(self, capsys):
        assert main(["targets", "fpqa"]) == 0
        out = capsys.readouterr().out
        assert "clause-coloring" in out

    def test_unknown_target_is_user_error(self, capsys):
        assert main(["targets", "pixie"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCompileTarget:
    def test_default_target_emits_wqasm(self, cnf_file, tmp_path):
        out = tmp_path / "out.wqasm"
        assert main(["compile", str(cnf_file), "-o", str(out)]) == 0
        assert out.read_text().startswith("OPENQASM 3.0;")

    def test_explicit_target_flag(self, cnf_file, capsys):
        assert main(["compile", str(cnf_file), "--target", "superconducting"]) == 0
        captured = capsys.readouterr()
        assert "superconducting" in captured.err
        assert "eps:" in captured.out

    def test_unknown_target_is_user_error(self, cnf_file, capsys):
        assert main(["compile", str(cnf_file), "--target", "pixie"]) == 2
        err = capsys.readouterr().err
        assert "unknown target" in err

    def test_verify_rejected_for_gate_level_target(self, cnf_file, capsys):
        rc = main(["compile", str(cnf_file), "--target", "atomique", "--verify"])
        assert rc == 2


class TestErrorHandler:
    def test_missing_input_is_user_error(self, capsys):
        assert main(["compile", "/nonexistent/x.cnf"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_wqasm_is_user_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.wqasm"
        bad.write_bytes(b"\xff\xfe\x00 not text")
        assert main(["check", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_syntactically_broken_wqasm_is_user_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.wqasm"
        bad.write_text("this is not wqasm {{{")
        assert main(["check", str(bad)]) == 2

    def test_internal_error_exits_1(self, cnf_file, monkeypatch, capsys):
        import repro.cli as cli

        def boom(text, name="x"):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(cli, "parse_wqasm", boom)
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        assert cli.main(["check", str(cnf_file)]) == 1
        err = capsys.readouterr().err
        assert "internal error" in err
        assert "synthetic failure" in err

    def test_internal_error_reraises_under_debug(self, cnf_file, monkeypatch):
        import repro.cli as cli

        def boom(text, name="x"):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(cli, "parse_wqasm", boom)
        monkeypatch.setenv("REPRO_DEBUG", "1")
        with pytest.raises(RuntimeError):
            cli.main(["check", str(cnf_file)])
