"""``sim`` jobs through the compilation service and its socket protocol."""

from __future__ import annotations

import asyncio

import pytest

from repro import CnfFormula
from repro.exceptions import SimulationError
from repro.service import CompilationService
from repro.service.artifacts import ArtifactStore, artifact_key
from repro.targets.workload import Workload


@pytest.fixture()
def formula():
    return CnfFormula.from_lists(
        [[1, -2, 3], [-1, 2, 4], [2, 3, -4]], num_vars=4, name="svc-sim"
    )


SIM = {"shots": 120, "seed": 5}


class TestSimJobs:
    def test_sim_job_kind_and_execution_payload(self, formula):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                job = await service.submit(formula, target="fpqa", simulate=SIM)
                result = await job
                assert job.kind == "sim"
                assert job.describe()["kind"] == "sim"
                assert result.execution is not None
                assert result.execution["shots"] == 120
                stats = service.stats()
                assert "service.sim.fpqa" in stats["profile"]["primitives"]

        asyncio.run(run())

    def test_sim_and_compile_jobs_have_distinct_artifacts(self, formula):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                sim_job = await service.submit(formula, target="fpqa", simulate=SIM)
                compile_job = await service.submit(formula, target="fpqa")
                assert sim_job.key != compile_job.key
                sim_result = await sim_job
                compile_result = await compile_job
                assert sim_result.execution is not None
                assert compile_result.execution is None
                assert compile_job.kind == "compile"

        asyncio.run(run())

    def test_warm_resubmission_is_byte_identical(self, formula):
        async def run():
            store = ArtifactStore()
            async with CompilationService(
                shards=1, backend="inline", store=store
            ) as service:
                first = await service.submit(formula, target="fpqa", simulate=SIM)
                await first
                second = await service.submit(formula, target="fpqa", simulate=SIM)
                result = await second
                assert second.from_cache
                assert result.execution == (await first.future).execution
                assert store.get_bytes(first.key) == store.get_bytes(second.key)

        asyncio.run(run())

    def test_artifact_key_covers_sim_options(self, formula):
        workload = Workload.from_formula(formula)
        base = artifact_key(workload, "fpqa")
        assert base == artifact_key(workload, "fpqa", simulate=None)
        with_sim = artifact_key(
            workload, "fpqa", simulate={"shots": 100, "seed": 1}
        )
        other_seed = artifact_key(
            workload, "fpqa", simulate={"shots": 100, "seed": 2}
        )
        assert len({base, with_sim, other_seed}) == 3

    def test_invalid_sim_options_rejected_up_front(self, formula):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                with pytest.raises(SimulationError):
                    await service.submit(
                        formula, target="fpqa", simulate={"shots": -1}
                    )

        asyncio.run(run())

    def test_unsimulatable_target_becomes_error_row(self, formula):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                job = await service.submit(formula, target="atomique", simulate=SIM)
                result = await job
                assert result.error is not None
                assert "SimulationError" in result.error

        asyncio.run(run())

    def test_submit_many_threads_simulate(self, formula):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                jobs = await service.submit_many(
                    [formula], targets=("fpqa", "superconducting"), simulate=SIM
                )
                results = await service.gather(jobs)
                assert all(r.execution is not None for r in results)

        asyncio.run(run())


class TestSocketProtocol:
    def test_submit_with_simulate_over_socket(self, formula, tmp_path):
        from repro.service import ServiceClient, ServiceServer

        socket_path = tmp_path / "weaver-sim.sock"

        async def run():
            service = CompilationService(shards=1, backend="inline")
            server = ServiceServer(service, socket_path)
            await server.start()
            try:
                client = await ServiceClient.connect(socket_path)
                try:
                    out = await client.submit(formula, target="fpqa", simulate=SIM)
                    assert out.result.execution is not None
                    assert out.result.execution["shots"] == 120
                    assert out.raw["execution"]["seed"] == 5
                    jobs = await client.jobs()
                    assert any(job["kind"] == "sim" for job in jobs)
                finally:
                    await client.close()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_malformed_simulate_is_user_error(self, formula, tmp_path):
        from repro.service import ServiceClient, ServiceServer
        from repro.exceptions import TargetError

        socket_path = tmp_path / "weaver-sim2.sock"

        async def run():
            service = CompilationService(shards=1, backend="inline")
            server = ServiceServer(service, socket_path)
            await server.start()
            try:
                client = await ServiceClient.connect(socket_path)
                try:
                    with pytest.raises(TargetError):
                        await client.submit(
                            formula, target="fpqa", simulate={"bogus": 1}
                        )
                finally:
                    await client.close()
            finally:
                await server.stop()

        asyncio.run(run())
