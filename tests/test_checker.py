"""Tests for the wChecker (paper §6): verification and bug detection."""

import copy

import pytest

import repro
from repro.checker import EquivalenceMethod, WChecker, check_program
from repro.checker.unitary_check import equivalence_check
from repro.circuits import QuantumCircuit, circuits_equivalent
from repro.fpqa.instructions import RamanLocal, RydbergPulse, ShuttleMove, Shuttle
from repro.wqasm.program import AnnotatedOperation


class TestHappyPath:
    def test_paper_example_verifies(self, compiled_paper_example):
        report = check_program(
            compiled_paper_example.program,
            reference=compiled_paper_example.native_circuit,
        )
        assert report.ok
        assert report.reconstructed_equivalent is True
        assert report.reference_equivalent is True
        assert report.reconstructed_method == EquivalenceMethod.UNITARY

    def test_ladder_mode_verifies(self, compiled_paper_example_ladder):
        report = check_program(
            compiled_paper_example_ladder.program,
            reference=compiled_paper_example_ladder.native_circuit,
        )
        assert report.ok

    def test_mixed_arity_verifies(self, compiled_mixed):
        report = check_program(
            compiled_mixed.program, reference=compiled_mixed.native_circuit
        )
        assert report.ok

    def test_roundtripped_program_verifies(self, compiled_paper_example):
        from repro.wqasm import parse_wqasm

        again = parse_wqasm(compiled_paper_example.program.to_wqasm())
        assert check_program(again).ok

    def test_uf20_structural_check(self, compiled_uf20):
        """20 qubits: exceeds dense unitaries; the per-op layer still runs."""
        checker = WChecker(max_probe_qubits=10)  # keep the test fast
        report = checker.check(compiled_uf20.program)
        assert not report.operation_failures
        assert report.operations_checked > 500
        assert report.reconstructed_method == EquivalenceMethod.TOO_LARGE

    def test_reconstruction_matches_logical(self, paper_formula):
        # The supported reconstruction seam is CompilationResult.as_circuit
        # (pulse-to-gate replay of the compiled artifact), not reaching
        # into repro.checker internals.
        result = repro.compile(paper_formula, target="fpqa", measure=False)
        rebuilt = result.as_circuit()
        assert circuits_equivalent(rebuilt, result.program.logical_circuit())


def _tamper_first(program, predicate, replace):
    """Replace the first instruction satisfying ``predicate``."""
    tampered = copy.deepcopy(program)
    for op_index, operation in enumerate(tampered.operations):
        new_instructions = []
        changed = False
        for instruction in operation.instructions:
            if not changed and predicate(instruction):
                instruction = replace(instruction)
                changed = True
            new_instructions.append(instruction)
        if changed:
            tampered.operations[op_index] = AnnotatedOperation(
                tuple(new_instructions), operation.gates
            )
            return tampered
    raise AssertionError("nothing to tamper with")


class TestBugDetection:
    def test_wrong_raman_angle_detected(self, compiled_paper_example):
        tampered = _tamper_first(
            compiled_paper_example.program,
            lambda i: isinstance(i, RamanLocal),
            lambda i: RamanLocal(i.qubit, i.x + 0.5, i.y, i.z),
        )
        report = check_program(tampered)
        assert not report.ok
        assert any("implements" in f for f in report.operation_failures)

    def test_missing_shuttle_detected(self, compiled_paper_example):
        """Dropping a movement step misplaces atoms: clusters go wrong."""
        tampered = _tamper_first(
            compiled_paper_example.program,
            lambda i: isinstance(i, Shuttle) and i.move.axis == "row",
            lambda i: Shuttle(ShuttleMove("row", 0, i.move.offset / 3.0)),
        )
        report = check_program(tampered)
        assert not report.ok

    def test_claimed_gate_without_pulse_detected(self, compiled_paper_example):
        tampered = copy.deepcopy(compiled_paper_example.program)
        for index, operation in enumerate(tampered.operations):
            if any(isinstance(i, RydbergPulse) for i in operation.instructions):
                without_pulse = tuple(
                    i
                    for i in operation.instructions
                    if not isinstance(i, RydbergPulse)
                )
                tampered.operations[index] = AnnotatedOperation(
                    without_pulse, operation.gates
                )
                break
        report = check_program(tampered)
        assert not report.ok

    def test_wrong_reference_detected(self, compiled_paper_example):
        wrong = QuantumCircuit(compiled_paper_example.program.num_qubits)
        wrong.x(0)
        report = check_program(compiled_paper_example.program, reference=wrong)
        assert not report.ok
        assert report.reference_equivalent is False

    def test_raise_on_failure(self, compiled_paper_example):
        from repro.exceptions import EquivalenceError

        tampered = _tamper_first(
            compiled_paper_example.program,
            lambda i: isinstance(i, RamanLocal),
            lambda i: RamanLocal(i.qubit, i.x + 1.0, i.y, i.z),
        )
        report = check_program(tampered)
        with pytest.raises(EquivalenceError):
            report.raise_on_failure()

    def test_ok_report_does_not_raise(self, compiled_paper_example):
        check_program(compiled_paper_example.program).raise_on_failure()


class TestEquivalenceCheck:
    def test_small_circuits_use_unitary(self):
        a = QuantumCircuit(2).h(0)
        verdict, method = equivalence_check(a, a.copy())
        assert verdict is True
        assert method == EquivalenceMethod.UNITARY

    def test_qubit_mismatch(self):
        verdict, _ = equivalence_check(QuantumCircuit(1), QuantumCircuit(2))
        assert verdict is False

    def test_probe_limit_respected(self):
        big = QuantumCircuit(18)
        verdict, method = equivalence_check(big, big.copy(), max_probe_qubits=10)
        assert verdict is None
        assert method == EquivalenceMethod.TOO_LARGE

    def test_probe_detects_difference(self):
        a = QuantumCircuit(14)
        b = QuantumCircuit(14).x(3)
        verdict, method = equivalence_check(a, b)
        assert verdict is False
        assert method == EquivalenceMethod.STATEVECTOR_PROBE
