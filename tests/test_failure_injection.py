"""Failure-injection tests: atom loss must surface as loud failures.

DESIGN.md §6 commits to failure-injection coverage: a lost atom (the
dominant neutral-atom hardware failure) must make subsequent device
operations raise or the wChecker report mismatches — never silently
produce a wrong program.

The mutation-catch sweep extends the same discipline to the static
analyzer: every fault class in the wLint mutation corpus
(:mod:`repro.analysis.mutations`) must be flagged on every
(target, device) cell that emits wQasm, with zero findings of *any*
severity on the clean compile — the analyzer's measured catch rate and
false-positive rate, not its opinion of healthy programs.
"""

import pytest

import repro
from repro.analysis import analyze_program, analyze_result
from repro.analysis.mutations import ALL_MUTATIONS
from repro.checker import PulseToGateConverter
from repro.devices import list_devices
from repro.exceptions import FPQAConstraintError, WeaverError
from repro.fpqa import (
    BindAtom,
    FPQADevice,
    RamanLocal,
    RydbergPulse,
    SlmInit,
    Transfer,
)
from repro.sat import random_ksat


@pytest.fixture
def loaded_device():
    device = FPQADevice()
    device.apply(SlmInit(((0.0, 0.0), (6.0, 0.0), (30.0, 0.0))))
    for qubit in range(3):
        device.apply(BindAtom(qubit=qubit, slm_index=qubit))
    return device


class TestAtomLoss:
    def test_lose_atom_clears_trap(self, loaded_device):
        loaded_device.lose_atom(0)
        assert 0 not in loaded_device.qubit_location
        assert loaded_device.slm_atoms[0] is None

    def test_lose_missing_atom_rejected(self, loaded_device):
        loaded_device.lose_atom(1)
        with pytest.raises(FPQAConstraintError):
            loaded_device.lose_atom(1)

    def test_raman_on_lost_atom_fails(self, loaded_device):
        loaded_device.lose_atom(2)
        with pytest.raises(FPQAConstraintError):
            loaded_device.apply(RamanLocal(2, 0.1, 0.2, 0.3))

    def test_lost_atom_changes_rydberg_clusters(self, loaded_device):
        clusters = loaded_device.apply(RydbergPulse())
        assert len(clusters) == 1  # qubits 0 and 1 interact
        loaded_device.lose_atom(1)
        assert loaded_device.apply(RydbergPulse()) == []

    def test_transfer_from_emptied_trap_fails(self, loaded_device):
        # Place an AOD crossing directly over trap 0, then lose its atom.
        loaded_device.aod_col_x = [0.0]
        loaded_device.aod_row_y = [0.0]
        loaded_device.lose_atom(0)
        with pytest.raises(FPQAConstraintError):
            # Both sides empty now: the transfer pre-condition fails.
            loaded_device.apply(Transfer(slm_index=0, aod_col=0, aod_row=0))


class TestLossDuringPrograms:
    def test_checker_replay_catches_loss(self, compiled_paper_example):
        """Replaying a program on a device that lost an atom must fail."""
        program = compiled_paper_example.program
        converter = PulseToGateConverter(program.num_qubits)
        instructions = program.fpqa_instructions()
        # Run setup, then lose a used atom and continue the replay.
        setup_len = len(program.setup)
        for instruction in instructions[:setup_len]:
            converter.convert(instruction)
        used = compiled_paper_example.context.formula.variables_used()
        converter.device.lose_atom(min(used) - 1)
        with pytest.raises(FPQAConstraintError):
            for instruction in instructions[setup_len:]:
                converter.convert(instruction)

    def test_loss_in_aod_during_zone(self, compiled_paper_example):
        """Losing an AOD-held atom mid-zone breaks the choreography."""
        program = compiled_paper_example.program
        converter = PulseToGateConverter(program.num_qubits)
        instructions = program.fpqa_instructions()
        failed = False
        lost = False
        for instruction in instructions:
            try:
                converter.convert(instruction)
            except FPQAConstraintError:
                failed = True
                break
            if not lost and converter.device.aod_atoms:
                (col, row), qubit = next(iter(converter.device.aod_atoms.items()))
                converter.device.lose_atom(qubit)
                lost = True
        assert lost
        assert failed


# ----------------------------------------------------------------------
# wLint mutation-catch sweep
# ----------------------------------------------------------------------

#: The wQasm-emitting (target, device) matrix the sweep covers: both
#: FPQA pipelines on their default hardware plus every built-in FPQA
#: device large enough for the sweep formula.
def _sweep_cells():
    cells = [("fpqa", None), ("fpqa-nocompress", None)]
    for device in list_devices(kind="fpqa"):
        profile = repro.get_device(device)
        if profile.max_qubits is None or profile.max_qubits >= 6:
            cells.append(("fpqa", device))
    return cells


@pytest.fixture(
    scope="module",
    params=_sweep_cells(),
    ids=lambda cell: f"{cell[0]}@{cell[1] or 'default'}",
)
def sweep_cell(request):
    """One clean compile of the sweep formula per (target, device) cell."""
    target, device = request.param
    formula = random_ksat(6, 11, seed=5, name="mutation-sweep-6v")
    return repro.compile(formula, target=target, device=device)


class TestMutationCatchSweep:
    def test_clean_compile_is_finding_free(self, sweep_cell):
        """Zero false positives: not even a warning on a healthy compile."""
        report = analyze_result(sweep_cell)
        assert report.diagnostics == [], [str(d) for d in report.diagnostics]
        assert report.ok

    @pytest.mark.parametrize("mutation", sorted(ALL_MUTATIONS))
    def test_mutant_is_caught(self, sweep_cell, mutation):
        """100% catch rate: every fault class yields error findings."""
        mutant = ALL_MUTATIONS[mutation](sweep_cell.program)
        report = analyze_program(mutant, hardware=sweep_cell.fpqa_hardware())
        assert not report.ok, f"{mutation} escaped the analyzer"
        assert report.errors

    @pytest.mark.parametrize("mutation", sorted(ALL_MUTATIONS))
    def test_checker_agrees_on_mutants(self, sweep_cell, mutation):
        """Differential: the dynamic wChecker also rejects every mutant."""
        mutant = ALL_MUTATIONS[mutation](sweep_cell.program)
        try:
            dynamic = repro.check_program(
                mutant,
                reference=sweep_cell.native_circuit,
                hardware=sweep_cell.fpqa_hardware(),
            )
        except WeaverError:
            return  # replay itself blew up on the fault: rejected
        assert not dynamic.ok, f"wChecker accepted the {mutation} mutant"
