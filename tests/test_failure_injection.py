"""Failure-injection tests: atom loss must surface as loud failures.

DESIGN.md §6 commits to failure-injection coverage: a lost atom (the
dominant neutral-atom hardware failure) must make subsequent device
operations raise or the wChecker report mismatches — never silently
produce a wrong program.
"""

import pytest

from repro.checker import PulseToGateConverter
from repro.exceptions import FPQAConstraintError
from repro.fpqa import (
    BindAtom,
    FPQADevice,
    RamanLocal,
    RydbergPulse,
    SlmInit,
    Transfer,
)
from repro.fpqa.instructions import Shuttle, ShuttleMove


@pytest.fixture
def loaded_device():
    device = FPQADevice()
    device.apply(SlmInit(((0.0, 0.0), (6.0, 0.0), (30.0, 0.0))))
    for qubit in range(3):
        device.apply(BindAtom(qubit=qubit, slm_index=qubit))
    return device


class TestAtomLoss:
    def test_lose_atom_clears_trap(self, loaded_device):
        loaded_device.lose_atom(0)
        assert 0 not in loaded_device.qubit_location
        assert loaded_device.slm_atoms[0] is None

    def test_lose_missing_atom_rejected(self, loaded_device):
        loaded_device.lose_atom(1)
        with pytest.raises(FPQAConstraintError):
            loaded_device.lose_atom(1)

    def test_raman_on_lost_atom_fails(self, loaded_device):
        loaded_device.lose_atom(2)
        with pytest.raises(FPQAConstraintError):
            loaded_device.apply(RamanLocal(2, 0.1, 0.2, 0.3))

    def test_lost_atom_changes_rydberg_clusters(self, loaded_device):
        clusters = loaded_device.apply(RydbergPulse())
        assert len(clusters) == 1  # qubits 0 and 1 interact
        loaded_device.lose_atom(1)
        assert loaded_device.apply(RydbergPulse()) == []

    def test_transfer_from_emptied_trap_fails(self, loaded_device):
        # Place an AOD crossing directly over trap 0, then lose its atom.
        loaded_device.aod_col_x = [0.0]
        loaded_device.aod_row_y = [0.0]
        loaded_device.lose_atom(0)
        with pytest.raises(FPQAConstraintError):
            # Both sides empty now: the transfer pre-condition fails.
            loaded_device.apply(Transfer(slm_index=0, aod_col=0, aod_row=0))


class TestLossDuringPrograms:
    def test_checker_replay_catches_loss(self, compiled_paper_example):
        """Replaying a program on a device that lost an atom must fail."""
        program = compiled_paper_example.program
        converter = PulseToGateConverter(program.num_qubits)
        instructions = program.fpqa_instructions()
        # Run setup, then lose a used atom and continue the replay.
        setup_len = len(program.setup)
        for instruction in instructions[:setup_len]:
            converter.convert(instruction)
        used = compiled_paper_example.context.formula.variables_used()
        converter.device.lose_atom(min(used) - 1)
        with pytest.raises(FPQAConstraintError):
            for instruction in instructions[setup_len:]:
                converter.convert(instruction)

    def test_loss_in_aod_during_zone(self, compiled_paper_example):
        """Losing an AOD-held atom mid-zone breaks the choreography."""
        program = compiled_paper_example.program
        converter = PulseToGateConverter(program.num_qubits)
        instructions = program.fpqa_instructions()
        failed = False
        lost = False
        for instruction in instructions:
            try:
                converter.convert(instruction)
            except FPQAConstraintError:
                failed = True
                break
            if not lost and converter.device.aod_atoms:
                (col, row), qubit = next(iter(converter.device.aod_atoms.items()))
                converter.device.lose_atom(qubit)
                lost = True
        assert lost
        assert failed
