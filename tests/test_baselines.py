"""Tests for the baseline compilers and the timeout machinery (§8.1)."""

import pytest

from repro.baselines import (
    ALL_COMPILERS,
    AtomiqueCompiler,
    DpqaCompiler,
    GeyserCompiler,
    SuperconductingCompiler,
    WeaverCompiler,
    run_with_timeout,
)
from repro.baselines.base import Deadline
from repro.exceptions import CompilationTimeout
from repro.sat import CnfFormula, random_ksat


@pytest.fixture(scope="module")
def small_formula():
    return random_ksat(6, 10, seed=2, name="small")


class TestInterface:
    def test_registry_is_complete(self):
        assert set(ALL_COMPILERS) == {
            "superconducting",
            "atomique",
            "weaver",
            "dpqa",
            "geyser",
        }

    @pytest.mark.parametrize("name", sorted(ALL_COMPILERS))
    def test_every_compiler_handles_small_formula(self, name, small_formula):
        result = run_with_timeout(
            ALL_COMPILERS[name](), small_formula, budget_seconds=120
        )
        assert result.succeeded, result.error
        assert result.compile_seconds > 0
        assert result.execution_seconds > 0
        if name == "geyser":
            assert result.eps is None  # excluded from Fig. 12
        else:
            assert 0 < result.eps <= 1

    def test_result_metadata(self, small_formula):
        result = run_with_timeout(WeaverCompiler(), small_formula, budget_seconds=60)
        assert result.workload == "small"
        assert result.num_vars == 6
        assert result.num_clauses == 10


class TestTimeouts:
    def test_deadline_raises_after_budget(self):
        deadline = Deadline(0.0, "test")
        with pytest.raises(CompilationTimeout):
            deadline.check()

    def test_unlimited_deadline_never_raises(self):
        Deadline(None, "test").check()

    def test_timeout_becomes_result_row(self, small_formula):
        result = run_with_timeout(GeyserCompiler(), small_formula, budget_seconds=0.0)
        assert result.timed_out
        assert not result.succeeded

    def test_error_becomes_result_row(self):
        formula = CnfFormula.from_lists([[1]], num_vars=200)
        result = run_with_timeout(SuperconductingCompiler(), formula)
        assert result.error is not None
        assert "127" in result.error


class TestAtomique:
    def test_no_three_qubit_gates(self, small_formula):
        result = AtomiqueCompiler().compile_formula(small_formula)
        assert "ccz" not in result.extra["counts"]

    def test_moves_replace_swaps(self, small_formula):
        result = AtomiqueCompiler().compile_formula(small_formula)
        assert result.extra["counts"]["move"] == result.extra["moves"]

    def test_pulse_accounting(self, small_formula):
        result = AtomiqueCompiler().compile_formula(small_formula)
        counts = result.extra["counts"]
        assert result.num_pulses == counts["1q"] + counts["cz"] + counts["move"]


class TestDpqa:
    def test_stage_gates_are_disjoint(self, small_formula):
        compiler = DpqaCompiler()
        from repro.baselines.base import Deadline as D
        from repro.passes import nativize_circuit

        circuit = nativize_circuit(compiler._qaoa(small_formula))
        stages, _ = compiler._schedule(circuit, D(60, "dpqa"))
        for stage in stages:
            qubits: set[int] = set()
            for pair in stage:
                assert not (set(pair) & qubits)
                qubits |= set(pair)

    def test_stage_count_near_lower_bound(self, small_formula):
        """The exact solver should not exceed 2x the trivial lower bound."""
        compiler = DpqaCompiler()
        from repro.baselines.base import Deadline as D
        from repro.passes import nativize_circuit

        circuit = nativize_circuit(compiler._qaoa(small_formula))
        stages, _ = compiler._schedule(circuit, D(120, "dpqa"))
        total = sum(len(s) for s in stages)
        per_qubit: dict[int, int] = {}
        for inst in circuit.instructions:
            if inst.gate.is_unitary and len(inst.qubits) == 2:
                for q in inst.qubits:
                    per_qubit[q] = per_qubit.get(q, 0) + 1
        lower_bound = max(per_qubit.values())
        assert lower_bound <= len(stages) <= 2 * lower_bound

    def test_result_fields(self, small_formula):
        result = DpqaCompiler().compile_formula(small_formula)
        assert result.extra["num_stages"] > 0
        assert result.extra["num_2q"] > 0


class TestGeyser:
    def test_blocks_at_most_three_qubits(self, small_formula):
        from repro.passes import nativize_circuit
        from repro.superconducting import SabreRouter
        from repro.baselines.geyser import triangular_coupling

        compiler = GeyserCompiler()
        native = nativize_circuit(compiler._qaoa(small_formula))
        routing = SabreRouter(triangular_coupling(6)).route(native)
        blocks, _ = compiler._block_circuit(routing.circuit, None)
        for block in blocks:
            qubits: set[int] = set()
            for op in block:
                qubits |= set(op.qubits)
            assert len(qubits) <= 3

    def test_triangular_lattice_has_diagonals(self):
        from repro.baselines.geyser import triangular_coupling

        cm = triangular_coupling(9)
        assert cm.are_connected(0, 4)  # diagonal of the first cell

    def test_no_movement_in_results(self, small_formula):
        result = GeyserCompiler().compile_formula(small_formula)
        assert "swaps" in result.extra  # SWAP-based, not movement-based


class TestQualitativeShape:
    """The orderings the paper's figures report, on a small instance."""

    @pytest.fixture(scope="class")
    def results(self, small_formula):
        out = {}
        for name in ("weaver", "atomique", "superconducting", "dpqa", "geyser"):
            out[name] = run_with_timeout(
                ALL_COMPILERS[name](), small_formula, budget_seconds=120
            )
        return out

    def test_superconducting_executes_fastest(self, results):
        sc = results["superconducting"].execution_seconds
        for name in ("weaver", "atomique", "dpqa"):
            assert sc < results[name].execution_seconds

    def test_superconducting_eps_is_worst(self, results):
        sc = results["superconducting"].eps
        for name in ("weaver", "atomique", "dpqa"):
            assert sc < results[name].eps

    def test_weaver_eps_same_order_as_atomique(self, results):
        """At 6 variables the zone overhead dominates; Weaver must still be
        within the same order of magnitude (its advantage appears at
        paper-scale sizes, checked in test_integration.py)."""
        assert results["weaver"].eps > 0.1 * results["atomique"].eps
