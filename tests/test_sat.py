"""Unit and property tests for the SAT substrate."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SatError
from repro.sat import (
    Clause,
    CnfFormula,
    SATLIB_SHAPES,
    brute_force_max_sat,
    clause_polynomial,
    clause_shares_variable,
    dpll_satisfiable,
    formula_polynomial,
    parse_dimacs,
    random_ksat,
    satlib_instance,
    to_dimacs,
    walksat,
)
from repro.sat.generator import satlib_suite


class TestClause:
    def test_empty_clause_rejected(self):
        with pytest.raises(SatError):
            Clause(())

    def test_zero_literal_rejected(self):
        with pytest.raises(SatError):
            Clause((1, 0))

    def test_repeated_variable_rejected(self):
        with pytest.raises(SatError):
            Clause((1, -1))

    def test_variables(self):
        assert Clause((-3, 1, 2)).variables == {1, 2, 3}

    def test_satisfaction_positive_literal(self):
        assert Clause((1,)).is_satisfied([True])
        assert not Clause((1,)).is_satisfied([False])

    def test_satisfaction_negative_literal(self):
        assert Clause((-1,)).is_satisfied([False])

    def test_shares_variable(self):
        assert clause_shares_variable(Clause((1, 2)), Clause((-2, 3)))
        assert not clause_shares_variable(Clause((1, 2)), Clause((3, 4)))


class TestFormula:
    def test_from_lists_infers_num_vars(self):
        formula = CnfFormula.from_lists([[1, -2], [3]])
        assert formula.num_vars == 3

    def test_clause_variable_out_of_range(self):
        with pytest.raises(SatError):
            CnfFormula(num_vars=2, clauses=[Clause((3,))])

    def test_num_satisfied(self):
        formula = CnfFormula.from_lists([[1], [-1]], num_vars=1)
        assert formula.num_satisfied([True]) == 1

    def test_assignment_length_checked(self):
        formula = CnfFormula.from_lists([[1]], num_vars=2)
        with pytest.raises(SatError):
            formula.num_satisfied([True])

    def test_is_3sat(self):
        assert CnfFormula.from_lists([[1, 2, 3]]).is_3sat()
        assert not CnfFormula.from_lists([[1, 2, 3, 4]]).is_3sat()

    def test_variables_used(self):
        formula = CnfFormula.from_lists([[1, -5]], num_vars=6)
        assert formula.variables_used() == {1, 5}


class TestDimacs:
    EXAMPLE = """c a comment
p cnf 3 2
1 -2 3 0
-1 2 0
"""

    def test_parse_basic(self):
        formula = parse_dimacs(self.EXAMPLE)
        assert formula.num_vars == 3
        assert formula.num_clauses == 2

    def test_roundtrip(self):
        formula = parse_dimacs(self.EXAMPLE)
        again = parse_dimacs(to_dimacs(formula, comment="roundtrip"))
        assert [c.literals for c in again.clauses] == [
            c.literals for c in formula.clauses
        ]

    def test_satlib_percent_trailer(self):
        text = self.EXAMPLE + "%\n0\n"
        assert parse_dimacs(text).num_clauses == 2

    def test_multiline_clause(self):
        text = "p cnf 3 1\n1 -2\n3 0\n"
        formula = parse_dimacs(text)
        assert formula.clauses[0].literals == (1, -2, 3)

    def test_missing_header_rejected(self):
        with pytest.raises(SatError):
            parse_dimacs("1 2 0\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(SatError):
            parse_dimacs("p cnf 1 0\np cnf 1 0\n")

    def test_clause_count_mismatch_rejected(self):
        with pytest.raises(SatError):
            parse_dimacs("p cnf 2 5\n1 0\n")

    def test_bad_token_rejected(self):
        with pytest.raises(SatError):
            parse_dimacs("p cnf 1 1\nfoo 0\n")


class TestGenerator:
    def test_satlib_shapes(self):
        assert SATLIB_SHAPES[20] == 91
        assert SATLIB_SHAPES[250] == 1065

    def test_instance_shape(self):
        formula = satlib_instance("uf20-01")
        assert formula.num_vars == 20
        assert formula.num_clauses == 91
        assert formula.is_3sat()

    def test_instances_deterministic(self):
        a = satlib_instance("uf20-03")
        b = satlib_instance("uf20-03")
        assert [c.literals for c in a.clauses] == [c.literals for c in b.clauses]

    def test_instances_differ_by_name(self):
        a = satlib_instance("uf20-01")
        b = satlib_instance("uf20-02")
        assert [c.literals for c in a.clauses] != [c.literals for c in b.clauses]

    def test_unknown_size_rejected(self):
        with pytest.raises(SatError):
            satlib_instance("uf33-01")

    def test_malformed_name_rejected(self):
        with pytest.raises(SatError):
            satlib_instance("blorp")

    def test_distinct_clauses(self):
        formula = random_ksat(10, 40, seed=5)
        literal_sets = [c.literals for c in formula.clauses]
        assert len(set(literal_sets)) == len(literal_sets)

    def test_k_larger_than_vars_rejected(self):
        with pytest.raises(SatError):
            random_ksat(2, 1, k=3)

    def test_suite_size(self):
        assert len(satlib_suite(20, count=4)) == 4


class TestPolynomial:
    @pytest.mark.parametrize(
        "literals",
        [(-1, -2, -3), (1, 2, 3), (1, -2, 3), (-1, 2), (2,), (-3,)],
    )
    def test_penalty_matches_truth_table(self, literals):
        clause = Clause(literals)
        poly = clause_polynomial(clause, 3)
        for bits in itertools.product([False, True], repeat=3):
            expected = 0.0 if clause.is_satisfied(list(bits)) else 1.0
            assert poly.evaluate(list(bits)) == pytest.approx(expected)

    def test_formula_polynomial_counts_violations(self):
        formula = CnfFormula.from_lists([[1, 2], [-1, 2], [-2]], num_vars=2)
        poly = formula_polynomial(formula)
        for bits in itertools.product([False, True], repeat=2):
            expected = formula.num_clauses - formula.num_satisfied(list(bits))
            assert poly.evaluate(list(bits)) == pytest.approx(expected)

    def test_degree_bounded_by_clause_size(self):
        poly = clause_polynomial(Clause((1, -2, 3)), 3)
        assert poly.degree == 3

    def test_terms_sorted_by_degree(self):
        poly = clause_polynomial(Clause((1, -2)), 2)
        degrees = [len(m) for m, _ in poly.terms()]
        assert degrees == sorted(degrees)

    def test_add_term_accumulates_and_cancels(self):
        poly = clause_polynomial(Clause((1,)), 1)
        poly.add_term((0,), -poly.coefficients[(0,)])
        assert (0,) not in poly.coefficients

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_clause_penalty_property(self, seed):
        formula = random_ksat(5, 1, seed=seed)
        clause = formula.clauses[0]
        poly = clause_polynomial(clause, 5)
        for bits in itertools.product([False, True], repeat=5):
            expected = 0.0 if clause.is_satisfied(list(bits)) else 1.0
            assert poly.evaluate(list(bits)) == pytest.approx(expected)


class TestSolvers:
    def test_dpll_sat(self):
        formula = CnfFormula.from_lists([[1, 2], [-1, 2], [1, -2]], num_vars=2)
        model = dpll_satisfiable(formula)
        assert model is not None
        assert formula.num_satisfied(model) == formula.num_clauses

    def test_dpll_unsat(self):
        formula = CnfFormula.from_lists([[1], [-1]], num_vars=1)
        assert dpll_satisfiable(formula) is None

    def test_dpll_on_satlib_instance(self):
        # Uniform random 3-SAT at ratio 4.55 is usually satisfiable at n=20.
        formula = satlib_instance("uf20-01")
        model = dpll_satisfiable(formula)
        if model is not None:
            assert formula.num_satisfied(model) == formula.num_clauses

    def test_walksat_reaches_brute_force_optimum(self):
        formula = random_ksat(8, 30, seed=11)
        _, best = brute_force_max_sat(formula)
        _, found = walksat(formula, max_flips=4000, seed=3)
        assert found >= best - 1  # local search may miss by at most a little

    def test_walksat_noise_validated(self):
        formula = CnfFormula.from_lists([[1]], num_vars=1)
        with pytest.raises(SatError):
            walksat(formula, noise=1.5)

    def test_brute_force_limits(self):
        formula = CnfFormula.from_lists([[1]], num_vars=1)
        assignment, score = brute_force_max_sat(formula)
        assert score == 1
        with pytest.raises(SatError):
            brute_force_max_sat(random_ksat(23, 10, seed=0))
