"""The unified target API: registry, workloads, parity with legacy paths."""

import pytest

import repro
from repro import (
    CompilationResult,
    UnknownTargetError,
    Workload,
    WorkloadError,
    coerce_workload,
)
from repro.qaoa import qaoa_circuit
from repro.qasm import circuit_to_qasm
from repro.sat import to_dimacs
from repro.targets import FPQATarget, Target, get_target, register_target, target_info
from repro.targets.registry import resolve_target_name

ALL_TARGETS = ("atomique", "dpqa", "fpqa", "fpqa-nocompress", "geyser", "superconducting")


class TestRegistry:
    def test_builtin_targets_registered(self):
        assert set(repro.available_targets()) == set(ALL_TARGETS)

    def test_unknown_target_rejected(self, tiny_formula):
        with pytest.raises(UnknownTargetError) as excinfo:
            repro.compile(tiny_formula, target="pixie")
        assert "pixie" in str(excinfo.value)
        assert "fpqa" in str(excinfo.value)  # names the alternatives

    def test_unknown_target_is_also_keyerror(self):
        with pytest.raises(KeyError):
            get_target("pixie")

    def test_weaver_alias_resolves_to_fpqa(self):
        assert resolve_target_name("weaver") == "fpqa"
        assert isinstance(get_target("weaver"), FPQATarget)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(repro.TargetError):
            register_target("fpqa", FPQATarget)

    def test_custom_target_registration(self, tiny_formula):
        class EchoTarget(Target):
            name = "echo-test"
            description = "test-only target"

            def run(self, workload, parameters, deadline, **options):
                return CompilationResult(
                    target=self.name,
                    workload=workload.name,
                    num_qubits=workload.num_qubits,
                )

        register_target("echo-test", EchoTarget, replace=True)
        result = repro.compile(tiny_formula, target="echo-test")
        assert result.target == "echo-test"
        assert result.num_qubits == tiny_formula.num_vars

    def test_target_info_lists_capabilities(self):
        info = {entry["name"]: entry for entry in target_info()}
        assert "formula" in info["fpqa"]["capabilities"]
        assert "wqasm" in info["fpqa"]["capabilities"]
        assert "circuit" in info["superconducting"]["capabilities"]


class TestWorkload:
    def test_from_formula(self, tiny_formula):
        workload = coerce_workload(tiny_formula)
        assert workload.name == tiny_formula.name
        assert workload.num_qubits == tiny_formula.num_vars
        assert workload.num_clauses == tiny_formula.num_clauses

    def test_from_circuit(self, tiny_formula):
        circuit = qaoa_circuit(tiny_formula, measure=False)
        workload = coerce_workload(circuit)
        assert not workload.has_formula
        assert workload.num_qubits == circuit.num_qubits

    def test_from_qasm_text(self, tiny_formula):
        qasm = circuit_to_qasm(qaoa_circuit(tiny_formula, measure=False))
        workload = coerce_workload(qasm)
        assert workload.num_qubits == tiny_formula.num_vars

    def test_from_cnf_file(self, tmp_path, tiny_formula):
        path = tmp_path / "tiny.cnf"
        path.write_text(to_dimacs(tiny_formula))
        workload = Workload.from_file(path)
        assert workload.has_formula
        assert workload.num_qubits == tiny_formula.num_vars

    def test_qasm_suffix_beats_content_sniff(self, tmp_path):
        """A .qasm file starting with 'c...' must route to the QASM parser
        (previously the DIMACS content sniff won and raised SatError)."""
        from repro.exceptions import QasmSemanticError

        path = tmp_path / "circ.qasm"
        path.write_text("creg c[3];\ncx q[0], q[1];\n")
        with pytest.raises(QasmSemanticError):
            Workload.from_file(path)

    def test_unreadable_file_rejected(self):
        with pytest.raises(WorkloadError):
            Workload.from_file("/nonexistent/never.cnf")

    def test_unsupported_input_rejected(self):
        with pytest.raises(WorkloadError):
            coerce_workload(42)

    def test_formula_required_by_fpqa(self, tiny_formula):
        circuit = qaoa_circuit(tiny_formula, measure=False)
        with pytest.raises(WorkloadError):
            repro.compile(circuit, target="fpqa")

    def test_circuit_accepted_by_superconducting(self, tiny_formula):
        circuit = qaoa_circuit(tiny_formula, measure=True)
        result = repro.compile(circuit, target="superconducting")
        assert result.succeeded
        assert result.eps is not None


class TestCompileAllTargets:
    """Acceptance: every registered target compiles a uf20 instance."""

    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_uf20_compiles(self, uf20, target):
        result = repro.compile(uf20, target=target)
        assert result.succeeded
        assert result.num_qubits == 20
        assert result.compile_seconds > 0

    def test_fpqa_program_verifies(self, uf20):
        result = repro.compile(uf20, target="fpqa")
        assert result.program is not None
        report = repro.check_program(result.program, reference=result.native_circuit)
        assert report.ok


class TestLegacyParity:
    """repro.compile must reproduce the legacy entrypoints exactly."""

    def test_fpqa_matches_compile_formula(self, uf20):
        with pytest.warns(DeprecationWarning):
            legacy = repro.compile_formula(uf20)
        unified = repro.compile(uf20, target="fpqa")
        assert unified.program.total_pulses == legacy.program.total_pulses
        assert unified.program.pulse_counts() == legacy.program.pulse_counts()
        assert unified.num_pulses == legacy.program.total_pulses
        assert (
            unified.stats["clause-coloring"]["num_colors"]
            == legacy.stats["clause-coloring"]["num_colors"]
        )

    def test_superconducting_matches_legacy_compiler(self, uf20):
        from repro.baselines import SuperconductingCompiler

        legacy = SuperconductingCompiler().compile_formula(uf20)
        unified = repro.compile(uf20, target="superconducting")
        assert unified.eps == pytest.approx(legacy.eps)
        assert unified.execution_seconds == pytest.approx(legacy.execution_seconds)
        assert unified.stats["num_swaps"] == legacy.extra["num_swaps"]

    def test_nocompress_matches_compression_off(self, tiny_formula):
        with pytest.warns(DeprecationWarning):
            legacy = repro.compile_formula(tiny_formula, compression=False)
        unified = repro.compile(tiny_formula, target="fpqa-nocompress")
        assert unified.program.pulse_counts() == legacy.program.pulse_counts()


class TestDeprecationShims:
    def test_compile_formula_warns(self, tiny_formula):
        with pytest.warns(DeprecationWarning, match="compile_formula"):
            result = repro.compile_formula(tiny_formula)
        assert result.program is not None

    def test_weaver_fpqa_compiler_warns(self):
        with pytest.warns(DeprecationWarning, match="WeaverFPQACompiler"):
            compiler = repro.WeaverFPQACompiler()
        assert compiler.hardware is not None

    def test_run_with_timeout_warns(self, tiny_formula):
        from repro.baselines import AtomiqueCompiler, run_with_timeout

        with pytest.warns(DeprecationWarning, match="run_with_timeout"):
            result = run_with_timeout(AtomiqueCompiler(), tiny_formula)
        assert result.succeeded

    def test_internal_paths_do_not_warn(self, tiny_formula, recwarn):
        repro.compile(tiny_formula, target="fpqa")
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestCompilationResult:
    def test_json_round_trip_preserves_program(self, tiny_formula):
        result = repro.compile(tiny_formula, target="fpqa")
        payload = result.to_dict()
        restored = CompilationResult.from_dict(payload)
        assert restored.target == "fpqa"
        assert restored.cached
        assert restored.eps == pytest.approx(result.eps)
        assert restored.program.total_pulses == result.program.total_pulses
        assert restored.program.pulse_counts() == result.program.pulse_counts()

    def test_budget_violation_raises_by_default(self, uf20):
        with pytest.raises(repro.CompilationTimeout):
            repro.compile(uf20, target="fpqa", budget_seconds=1e-9)

    def test_baseline_result_view(self, tiny_formula):
        result = repro.compile(tiny_formula, target="atomique")
        row = result.to_baseline_result(compiler="atomique")
        assert row.compiler == "atomique"
        assert row.num_vars == tiny_formula.num_vars
        assert row.succeeded
