"""Tests for the OpenQASM front end: lexer, parser, loader, printer."""

import math

import pytest

from repro.circuits import QuantumCircuit, circuits_equivalent
from repro.exceptions import QasmSemanticError, QasmSyntaxError
from repro.qasm import (
    circuit_to_qasm,
    load_circuit,
    parse_qasm,
    program_to_qasm,
    qasm_to_circuit,
    tokenize,
)
from repro.qasm.ast import MeasureStmt, QubitDecl
from repro.qasm.lexer import TokenType


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("h q[0];")
        kinds = [t.type for t in tokens]
        assert kinds[0] == TokenType.IDENTIFIER
        assert kinds[-1] == TokenType.EOF

    def test_line_comments_stripped(self):
        tokens = tokenize("// comment\nh q;")
        assert tokens[0].value == "h"

    def test_block_comments_stripped(self):
        tokens = tokenize("/* multi\nline */ x q;")
        assert tokens[0].value == "x"

    def test_unterminated_block_comment(self):
        with pytest.raises(QasmSyntaxError):
            tokenize("/* forever")

    def test_annotation_token_consumes_line(self):
        tokens = tokenize("@rydberg\nh q;")
        assert tokens[0].type == TokenType.ANNOTATION
        assert tokens[0].value == "rydberg"

    def test_empty_annotation_rejected(self):
        with pytest.raises(QasmSyntaxError):
            tokenize("@\n")

    def test_string_literal(self):
        tokens = tokenize('include "stdgates.inc";')
        assert tokens[1].type == TokenType.STRING

    def test_unterminated_string(self):
        with pytest.raises(QasmSyntaxError):
            tokenize('include "oops')

    def test_scientific_notation(self):
        tokens = tokenize("rz(1.5e-3) q[0];")
        values = [t.value for t in tokens if t.type == TokenType.NUMBER]
        assert "1.5e-3" in values

    def test_arrow_token(self):
        tokens = tokenize("measure q[0] -> c[0];")
        assert any(t.type == TokenType.ARROW for t in tokens)

    def test_line_tracking(self):
        tokens = tokenize("h q;\nx q;")
        x_token = [t for t in tokens if t.value == "x"][0]
        assert x_token.line == 2

    def test_unexpected_character(self):
        with pytest.raises(QasmSyntaxError):
            tokenize("h q$;")


class TestParser:
    def test_version_header(self):
        program = parse_qasm("OPENQASM 3.0;\nqubit[2] q;")
        assert program.version == "3.0"

    def test_qasm2_registers(self):
        program = parse_qasm("qreg q[3];\ncreg c[3];")
        decls = [s for s in program.statements if isinstance(s, QubitDecl)]
        assert decls[0].size == 3

    def test_gate_call_params_folded(self):
        program = parse_qasm("qubit[1] q;\nrz(pi/2) q[0];")
        call = program.gate_calls()[0]
        assert call.params[0] == pytest.approx(math.pi / 2)

    def test_expression_arithmetic(self):
        program = parse_qasm("qubit[1] q;\nrz(2*(1+3)-0.5) q[0];")
        assert program.gate_calls()[0].params[0] == pytest.approx(7.5)

    def test_unary_minus(self):
        program = parse_qasm("qubit[1] q;\nrz(-pi) q[0];")
        assert program.gate_calls()[0].params[0] == pytest.approx(-math.pi)

    def test_division_by_zero_rejected(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm("qubit[1] q;\nrz(1/0) q[0];")

    def test_qasm2_measure(self):
        program = parse_qasm("qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];")
        assert isinstance(program.statements[-1], MeasureStmt)

    def test_qasm3_measure(self):
        program = parse_qasm("qubit[1] q;\nbit[1] c;\nc[0] = measure q[0];")
        assert isinstance(program.statements[-1], MeasureStmt)

    def test_barrier_without_operands(self):
        parse_qasm("qubit[1] q;\nbarrier;")

    def test_annotations_attach_to_next_statement(self):
        program = parse_qasm("qubit[1] q;\n@rydberg\n@raman global 1 2 3\nh q[0];")
        call = program.gate_calls()[0]
        assert [a.keyword for a in call.annotations] == ["rydberg", "raman"]

    def test_trailing_annotation_rejected(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm("qubit[1] q;\n@rydberg\n")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm("qubit[1] q;\nh q[0]")

    def test_include_statement(self):
        parse_qasm('include "stdgates.inc";\nqubit[1] q;')


class TestLoader:
    def test_flat_indexing_across_registers(self):
        source = "qubit[2] a;\nqubit[3] b;\ncx a[1], b[0];"
        circuit = qasm_to_circuit(source)
        assert circuit.num_qubits == 5
        assert circuit.instructions[0].qubits == (1, 2)

    def test_broadcast_gate(self):
        circuit = qasm_to_circuit("qubit[3] q;\nh q;")
        assert circuit.count_ops() == {"h": 3}

    def test_broadcast_annotations_on_first_only(self):
        loaded = load_circuit(parse_qasm("qubit[2] q;\n@rydberg\nh q;"))
        assert loaded.instruction_annotations[0]
        assert not loaded.instruction_annotations[1]

    def test_setup_annotations_collected(self):
        loaded = load_circuit(
            parse_qasm("@slm [(0.0, 0.0)]\nqubit[1] q;\nh q[0];")
        )
        assert loaded.setup_annotations[0].keyword == "slm"

    def test_unknown_register_rejected(self):
        with pytest.raises(QasmSemanticError):
            qasm_to_circuit("qubit[1] q;\nh r[0];")

    def test_index_out_of_range_rejected(self):
        with pytest.raises(QasmSemanticError):
            qasm_to_circuit("qubit[1] q;\nh q[4];")

    def test_duplicate_register_rejected(self):
        with pytest.raises(QasmSemanticError):
            qasm_to_circuit("qubit[1] q;\nqubit[1] q;")

    def test_measure_register_mismatch_rejected(self):
        with pytest.raises(QasmSemanticError):
            qasm_to_circuit("qubit[2] q;\nbit[1] c;\nc = measure q;")

    def test_gate_aliases_resolved(self):
        circuit = qasm_to_circuit("qubit[2] q;\ncnot q[0], q[1];")
        assert circuit.instructions[0].name == "cx"


class TestPrinter:
    def test_circuit_roundtrip_exact(self):
        qc = QuantumCircuit(3, 3)
        qc.h(0).cx(0, 1).rz(0.25, 2).ccz(0, 1, 2).u3(0.1, -0.2, 0.3, 1)
        qc.barrier((0, 1))
        qc.measure(2, 2)
        again = qasm_to_circuit(circuit_to_qasm(qc))
        assert again == qc

    def test_roundtrip_preserves_unitary(self):
        qc = QuantumCircuit(2).h(0).cp(1.234567, 0, 1).sx(1)
        again = qasm_to_circuit(circuit_to_qasm(qc))
        assert circuits_equivalent(qc, again)

    def test_program_roundtrip_with_annotations(self):
        source = (
            "OPENQASM 3.0;\n@slm [(0.0, 0.0)]\nqubit[2] q;\n"
            "@rydberg\ncz q[0], q[1];\n"
        )
        printed = program_to_qasm(parse_qasm(source))
        reparsed = parse_qasm(printed)
        assert reparsed.gate_calls()[0].annotations[0].keyword == "rydberg"

    def test_float_params_printed_losslessly(self):
        qc = QuantumCircuit(1).rz(0.1 + 0.2, 0)  # 0.30000000000000004
        again = qasm_to_circuit(circuit_to_qasm(qc))
        assert again.instructions[0].params == qc.instructions[0].params
