"""Unit tests for the linear-algebra helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.linalg import (
    allclose_up_to_global_phase,
    apply_gate_to_state,
    apply_gate_to_unitary,
    expand_gate,
    fidelity,
    global_phase_between,
    is_unitary,
    kron_all,
    projector_phase_polynomial,
    random_statevector,
)

_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Z = np.diag([1, -1]).astype(complex)
_CX = np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex)


class TestKron:
    def test_empty_product_is_scalar_one(self):
        assert kron_all([]).shape == (1, 1)
        assert kron_all([])[0, 0] == 1.0

    def test_two_factor_product(self):
        out = kron_all([_X, _Z])
        assert out.shape == (4, 4)
        assert np.allclose(out, np.kron(_X, _Z))

    def test_three_factor_shape(self):
        assert kron_all([_X, _X, _X]).shape == (8, 8)


class TestIsUnitary:
    def test_pauli_x_is_unitary(self):
        assert is_unitary(_X)

    def test_projector_is_not_unitary(self):
        assert not is_unitary(np.diag([1.0, 0.0]))

    def test_non_square_is_not_unitary(self):
        assert not is_unitary(np.ones((2, 3)))


class TestGlobalPhase:
    def test_identical_matrices(self):
        assert global_phase_between(_X, _X) == pytest.approx(1.0)

    def test_phase_multiple_detected(self):
        phase = np.exp(0.7j)
        found = global_phase_between(phase * _X, _X)
        assert found is not None
        assert found == pytest.approx(phase)

    def test_different_matrices_rejected(self):
        assert global_phase_between(_X, _Z) is None

    def test_scaled_matrix_rejected(self):
        # 2X is not a phase multiple of X (|phase| must be 1).
        assert global_phase_between(2.0 * _X, _X) is None

    def test_shape_mismatch_rejected(self):
        assert global_phase_between(_X, _CX) is None

    def test_allclose_wrapper(self):
        assert allclose_up_to_global_phase(1j * _Z, _Z)
        assert not allclose_up_to_global_phase(_X, _Z)


class TestGateApplication:
    def test_x_on_qubit_zero_little_endian(self):
        state = np.zeros(4, dtype=complex)
        state[0] = 1.0
        out = apply_gate_to_state(_X, (0,), state, 2)
        assert np.argmax(np.abs(out)) == 1  # |01> with qubit0 = 1

    def test_x_on_qubit_one_little_endian(self):
        state = np.zeros(4, dtype=complex)
        state[0] = 1.0
        out = apply_gate_to_state(_X, (1,), state, 2)
        assert np.argmax(np.abs(out)) == 2

    def test_cx_control_first_convention(self):
        # |q0=1, q1=0> = index 1 must map to |11> = index 3.
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0
        out = apply_gate_to_state(_CX, (0, 1), state, 2)
        assert np.argmax(np.abs(out)) == 3

    def test_cx_no_trigger_when_control_zero(self):
        state = np.zeros(4, dtype=complex)
        state[2] = 1.0  # q1 = 1, q0 = 0
        out = apply_gate_to_state(_CX, (0, 1), state, 2)
        assert np.argmax(np.abs(out)) == 2

    def test_wrong_matrix_shape_raises(self):
        with pytest.raises(SimulationError):
            apply_gate_to_state(_X, (0, 1), np.zeros(4, dtype=complex), 2)

    def test_duplicate_qubits_raise(self):
        with pytest.raises(SimulationError):
            apply_gate_to_state(_CX, (0, 0), np.zeros(4, dtype=complex), 2)

    def test_unitary_application_matches_expand(self):
        unitary = np.eye(4, dtype=complex)
        via_apply = apply_gate_to_unitary(_CX, (1, 0), unitary, 2)
        via_expand = expand_gate(_CX, (1, 0), 2)
        assert np.allclose(via_apply, via_expand)

    def test_expand_refuses_huge_register(self):
        with pytest.raises(SimulationError):
            expand_gate(_X, (0,), 20)


class TestStatevectors:
    def test_random_statevector_normalized(self):
        rng = np.random.default_rng(3)
        vec = random_statevector(5, rng)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_fidelity_of_identical_states(self):
        rng = np.random.default_rng(4)
        vec = random_statevector(3, rng)
        assert fidelity(vec, vec) == pytest.approx(1.0)

    def test_fidelity_of_orthogonal_states(self):
        a = np.array([1, 0], dtype=complex)
        b = np.array([0, 1], dtype=complex)
        assert fidelity(a, b) == pytest.approx(0.0)


class TestPhasePolynomial:
    def test_shape(self):
        z = projector_phase_polynomial(3)
        assert z.shape == (8, 3)

    def test_values_are_plus_minus_one(self):
        z = projector_phase_polynomial(4)
        assert set(np.unique(z)) == {-1.0, 1.0}

    def test_qubit_zero_alternates(self):
        z = projector_phase_polynomial(2)
        assert list(z[:, 0]) == [1.0, -1.0, 1.0, -1.0]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10**6))
def test_gate_application_preserves_norm(num_qubits, seed):
    """Applying a unitary must preserve the statevector norm."""
    rng = np.random.default_rng(seed)
    state = random_statevector(num_qubits, rng)
    qubit = int(rng.integers(0, num_qubits))
    out = apply_gate_to_state(_X, (qubit,), state, num_qubits)
    assert np.linalg.norm(out) == pytest.approx(1.0)
