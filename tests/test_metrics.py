"""Tests for the execution-time, EPS, and complexity metric models (§8)."""

import math

import pytest

from repro.fpqa import FPQAHardwareParams
from repro.metrics import (
    atomique_steps,
    dpqa_log10_steps,
    geyser_steps,
    program_duration_us,
    program_eps,
    qiskit_steps,
    weaver_steps,
)
from repro.metrics.complexity import COMPLEXITY_TABLE, dpqa_steps
from repro.passes import compile_formula


class TestTiming:
    def test_duration_positive(self, compiled_paper_example):
        assert program_duration_us(compiled_paper_example.program) > 0

    def test_measurement_adds_readout(self, paper_formula):
        measured = compile_formula(paper_formula, measure=True)
        unmeasured = compile_formula(paper_formula, measure=False)
        hw = FPQAHardwareParams()
        delta = program_duration_us(measured.program, hw) - program_duration_us(
            unmeasured.program, hw
        )
        assert delta == pytest.approx(hw.measurement_duration_us)

    def test_consecutive_transfers_batched(self, compiled_paper_example):
        """Transfer windows cost one handoff regardless of atom count."""
        from repro.fpqa.instructions import Transfer

        hw = FPQAHardwareParams()
        program = compiled_paper_example.program
        transfers = sum(
            isinstance(i, Transfer) for i in program.fpqa_instructions()
        )
        duration = program_duration_us(program, hw)
        # If every transfer were paid individually the duration would grow
        # by at least (transfers - windows) * transfer time.
        assert transfers > 10
        naive = duration + transfers * hw.transfer_duration_us
        assert duration < naive

    def test_ladder_mode_takes_longer(
        self, compiled_paper_example, compiled_paper_example_ladder
    ):
        hw = FPQAHardwareParams()
        assert program_duration_us(
            compiled_paper_example_ladder.program, hw
        ) > program_duration_us(compiled_paper_example.program, hw)


class TestEps:
    def test_eps_in_unit_interval(self, compiled_uf20):
        eps = program_eps(compiled_uf20.program)
        assert 0 < eps < 1

    def test_better_ccz_improves_eps(self, paper_formula):
        result = compile_formula(paper_formula, measure=True)
        low = program_eps(
            result.program, FPQAHardwareParams().with_overrides(fidelity_ccz=0.98)
        )
        high = program_eps(
            result.program, FPQAHardwareParams().with_overrides(fidelity_ccz=0.995)
        )
        assert high > low

    def test_eps_monotone_in_ccz_fidelity(self, compiled_uf20):
        values = [
            program_eps(
                compiled_uf20.program,
                FPQAHardwareParams().with_overrides(fidelity_ccz=f),
            )
            for f in (0.98, 0.985, 0.99, 0.995)
        ]
        assert values == sorted(values)

    def test_compression_beats_ladder_on_default_hardware(self, paper_formula):
        hw = FPQAHardwareParams()
        compressed = compile_formula(paper_formula, measure=True)
        ladder = compile_formula(paper_formula, compression=False, measure=True)
        assert program_eps(compressed.program, hw) > program_eps(ladder.program, hw)


class TestComplexity:
    def test_table_entries(self):
        assert COMPLEXITY_TABLE["weaver"] == "O(N^2)"
        assert COMPLEXITY_TABLE["dpqa"] == "O(2^K)"

    def test_polynomial_orders(self):
        assert qiskit_steps(10) == 1000
        assert atomique_steps(10) == 1000
        assert weaver_steps(10) == 100
        assert geyser_steps(10) == 100

    def test_weaver_asymptotically_cheapest(self):
        n = 250
        k = 40 * n  # operations dwarf variables
        assert weaver_steps(n) < qiskit_steps(n)
        assert weaver_steps(n) < geyser_steps(k)
        assert math.isinf(dpqa_steps(k))

    def test_dpqa_log_form(self):
        assert dpqa_log10_steps(10) == pytest.approx(10 * math.log10(2))

    def test_dpqa_small_value_exact(self):
        assert dpqa_steps(4) == pytest.approx(16.0)
