"""Tests for QAOA circuit construction — the fragment equivalences here are
the mathematical core of the 3-qubit gate compression (paper Figure 7)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, circuit_unitary, circuits_equivalent
from repro.exceptions import CircuitError
from repro.linalg import allclose_up_to_global_phase
from repro.qaoa import (
    QaoaParameters,
    clause_cost_circuit,
    compressed_clause_circuit,
    cost_circuit,
    cost_unitary_diagonal,
    expected_unsatisfied,
    initialization_circuit,
    mixer_circuit,
    monomial_rotation,
    qaoa_circuit,
    sample_best_assignment,
)
from repro.sat import CnfFormula, clause_polynomial, formula_polynomial, random_ksat
from repro.sat.cnf import Clause

ALL_SIGN_PATTERNS = list(itertools.product([1, -1], repeat=3))


class TestMonomialRotation:
    def test_single_variable_is_rz(self):
        qc = QuantumCircuit(1)
        monomial_rotation(qc, (0,), 0.5, 0.8)
        assert qc.count_ops() == {"rz": 1}
        assert qc.instructions[0].params[0] == pytest.approx(2 * 0.8 * 0.5)

    def test_empty_monomial_is_noop(self):
        qc = QuantumCircuit(1)
        monomial_rotation(qc, (), 1.0, 1.0)
        assert len(qc) == 0

    def test_quadratic_ladder_structure(self):
        qc = QuantumCircuit(2)
        monomial_rotation(qc, (0, 1), 1.0, 0.3)
        assert [i.name for i in qc.instructions] == ["cx", "rz", "cx"]

    def test_cubic_ladder_matches_exact_exponential(self):
        gamma, coeff = 0.4, -0.7
        qc = QuantumCircuit(3)
        monomial_rotation(qc, (0, 1, 2), coeff, gamma)
        z = np.array([1, -1])
        diag = np.ones(8, dtype=complex)
        for basis in range(8):
            z0, z1, z2 = ((-1) ** ((basis >> k) & 1) for k in range(3))
            diag[basis] = np.exp(-1j * gamma * coeff * z0 * z1 * z2)
        assert allclose_up_to_global_phase(circuit_unitary(qc), np.diag(diag))


class TestClauseFragments:
    @pytest.mark.parametrize("signs", ALL_SIGN_PATTERNS)
    def test_ladder_fragment_equals_exact_diagonal(self, signs):
        clause = Clause(tuple(s * v for s, v in zip(signs, (1, 2, 3))))
        gamma = 0.9
        circuit = clause_cost_circuit(clause, 3, gamma)
        exact = cost_unitary_diagonal(clause_polynomial(clause, 3), gamma)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), np.diag(exact))

    @pytest.mark.parametrize("signs", ALL_SIGN_PATTERNS)
    def test_compressed_fragment_equals_exact_diagonal(self, signs):
        """Figure 7: the CCX-sandwich compression is exactly equivalent."""
        clause = Clause(tuple(s * v for s, v in zip(signs, (1, 2, 3))))
        gamma = 1.1
        circuit = compressed_clause_circuit(clause, 3, gamma)
        exact = cost_unitary_diagonal(clause_polynomial(clause, 3), gamma)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), np.diag(exact))

    def test_compressed_uses_ccx_gates(self):
        circuit = compressed_clause_circuit(Clause((-1, -2, -3)), 3, 0.5)
        assert circuit.count_ops()["ccx"] == 2
        assert circuit.count_ops()["cx"] == 2

    def test_compressed_falls_back_for_two_literals(self):
        circuit = compressed_clause_circuit(Clause((1, -2)), 2, 0.5)
        assert "ccx" not in circuit.count_ops()

    def test_compressed_and_ladder_agree(self):
        clause = Clause((1, -4, 2))
        a = compressed_clause_circuit(clause, 4, 0.37)
        b = clause_cost_circuit(clause, 4, 0.37)
        assert circuits_equivalent(a, b)

    def test_out_of_range_variable_rejected(self):
        with pytest.raises(CircuitError):
            compressed_clause_circuit(Clause((1, 2, 5)), 3, 0.1)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6), st.floats(0.05, 3.0))
    def test_compression_property_random_clauses(self, seed, gamma):
        formula = random_ksat(6, 1, seed=seed)
        clause = formula.clauses[0]
        a = compressed_clause_circuit(clause, 6, gamma)
        exact = cost_unitary_diagonal(clause_polynomial(clause, 6), gamma)
        assert allclose_up_to_global_phase(circuit_unitary(a), np.diag(exact))


class TestFullCost:
    def test_cost_circuit_matches_diagonal(self):
        formula = CnfFormula.from_lists([[1, -2, 3], [-1, 2, -3]], num_vars=3)
        poly = formula_polynomial(formula)
        gamma = 0.62
        circuit = cost_circuit(poly, gamma)
        exact = cost_unitary_diagonal(poly, gamma)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), np.diag(exact))

    def test_init_layer_is_hadamards(self):
        circuit = initialization_circuit(4)
        assert circuit.count_ops() == {"h": 4}

    def test_mixer_layer_is_rx(self):
        circuit = mixer_circuit(3, 0.4)
        assert circuit.count_ops() == {"rx": 3}
        assert circuit.instructions[0].params[0] == pytest.approx(0.8)


class TestQaoaAssembly:
    def test_parameter_validation(self):
        with pytest.raises(CircuitError):
            QaoaParameters(gammas=(0.1,), betas=())
        with pytest.raises(CircuitError):
            QaoaParameters(gammas=(), betas=())

    def test_layer_count(self):
        params = QaoaParameters(gammas=(0.1, 0.2), betas=(0.3, 0.4))
        assert params.num_layers == 2

    def test_circuit_qubits_match_variables(self):
        formula = CnfFormula.from_lists([[1, -2]], num_vars=4)
        assert qaoa_circuit(formula).num_qubits == 4

    def test_measurement_flag(self):
        formula = CnfFormula.from_lists([[1]], num_vars=1)
        assert "measure" in qaoa_circuit(formula, measure=True).count_ops()
        assert "measure" not in qaoa_circuit(formula, measure=False).count_ops()

    def test_two_layer_structure(self):
        formula = CnfFormula.from_lists([[1, 2]], num_vars=2)
        one = qaoa_circuit(formula, QaoaParameters((0.5,), (0.2,)))
        two = qaoa_circuit(formula, QaoaParameters((0.5, 0.5), (0.2, 0.2)))
        assert len(two) > len(one)


class TestEnergy:
    def test_uniform_superposition_expectation(self):
        # Over the uniform superposition, E[unsatisfied] = m / 8 for 3-SAT.
        formula = CnfFormula.from_lists([[1, 2, 3], [-1, -2, -3]], num_vars=3)
        circuit = initialization_circuit(3)
        value = expected_unsatisfied(formula, circuit)
        assert value == pytest.approx(2 / 8)

    def test_qaoa_improves_over_random_guessing(self):
        formula = CnfFormula.from_lists(
            [[1, 2, 3], [-1, 2, 3], [1, -2, 3], [1, 2, -3]], num_vars=3
        )
        random_baseline = expected_unsatisfied(formula, initialization_circuit(3))
        # A coarse angle sweep stands in for the classical outer loop.
        best = min(
            expected_unsatisfied(
                formula, qaoa_circuit(formula, QaoaParameters((gamma,), (beta,)))
            )
            for gamma in (-1.5, -1.0, -0.5, 0.5, 1.0, 1.5)
            for beta in (0.2, 0.4, 0.6)
        )
        assert best < random_baseline

    def test_sampling_returns_valid_assignment(self):
        formula = CnfFormula.from_lists([[1, -2], [2]], num_vars=2)
        assignment, score = sample_best_assignment(
            formula, qaoa_circuit(formula), shots=256, seed=1
        )
        assert len(assignment) == 2
        assert score == formula.num_satisfied(assignment)
        assert score == 2  # tiny instance: optimum should be sampled
