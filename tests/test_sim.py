"""Tests for repro.sim: engines, noise model, executor, stack threading."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import CnfFormula
from repro.circuits import circuit_statevector
from repro.circuits.random_circuits import random_circuit
from repro.exceptions import SimulationError, TargetError
from repro.metrics import program_eps
from repro.sim import (
    ExecutionResult,
    NaiveStatevectorEngine,
    NoiseEvent,
    NoiseModel,
    Schedule,
    StatevectorEngine,
    bitstring,
    canonical_sim_options,
    run_schedule,
    schedule_from_program,
    score_samples,
    simulate_program,
    simulate_result,
    wilson_interval,
)
from repro.sim.noise import KIND_READOUT


@pytest.fixture(scope="module")
def small_formula():
    return CnfFormula.from_lists(
        [[1, -2, 3], [-1, 2, 4], [2, 3, -4]], num_vars=4, name="sim-small"
    )


@pytest.fixture(scope="module")
def compiled_small(small_formula):
    return repro.compile(small_formula, target="fpqa")


class TestEngines:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference_statevector(self, seed):
        circuit = random_circuit(5, 40, seed=seed, max_arity=3)
        fast = StatevectorEngine(5).run(circuit)
        reference = circuit_statevector(circuit)
        assert np.allclose(fast, reference, atol=1e-9)

    def test_naive_engine_matches_too(self):
        circuit = random_circuit(4, 25, seed=9)
        assert np.allclose(
            NaiveStatevectorEngine(4).run(circuit),
            circuit_statevector(circuit),
            atol=1e-9,
        )

    def test_mcz_and_measure_handling(self):
        circuit = repro.QuantumCircuit(4)
        for q in range(4):
            circuit.h(q)
        circuit.mcz((0, 1, 2, 3))
        circuit.rzz(0.3, 1, 3)
        circuit.measure_all()
        fast = StatevectorEngine(4).run(circuit)
        reference = circuit_statevector(circuit)
        assert np.allclose(fast, reference, atol=1e-9)

    def test_pauli_inserts_match_explicit_gates(self):
        circuit = random_circuit(3, 12, seed=2, max_arity=2)
        inserts = [(0, 1, "x"), (5, 0, "z"), (12, 2, "y")]
        with_inserts = StatevectorEngine(3).run(circuit, inserts=inserts)
        explicit = repro.QuantumCircuit(3)
        for index, inst in enumerate(circuit.instructions):
            for position, qubit, pauli in inserts:
                if position == index:
                    explicit.append(pauli, (qubit,))
            explicit.append(inst.gate, inst.qubits)
        for position, qubit, pauli in inserts:
            if position == len(circuit.instructions):
                explicit.append(pauli, (qubit,))
        assert np.allclose(
            with_inserts, circuit_statevector(explicit), atol=1e-9
        )

    def test_initial_state_and_segments_compose(self):
        circuit = random_circuit(4, 20, seed=5)
        engine = StatevectorEngine(4)
        whole = engine.run(circuit)
        state = engine.initial_state()
        state = engine.apply_segment(state, circuit.instructions, 0, 7)
        state = engine.apply_segment(state, circuit.instructions, 7, 20)
        assert np.allclose(whole, state, atol=1e-9)

    def test_qubit_cap_enforced(self):
        with pytest.raises(SimulationError):
            StatevectorEngine(repro.linalg.MAX_STATEVECTOR_QUBITS + 1)
        with pytest.raises(SimulationError):
            NaiveStatevectorEngine(repro.linalg.MAX_UNITARY_QUBITS + 1)

    def test_sample_distribution_roughly_uniform(self):
        circuit = repro.QuantumCircuit(2).h(0).h(1)
        engine = StatevectorEngine(2)
        state = engine.run(circuit)
        samples = engine.sample(state, 4000, np.random.default_rng(0))
        counts = np.bincount(samples, minlength=4)
        assert (counts > 800).all()

    def test_bitstring_matches_measurement_distribution_keys(self):
        circuit = repro.QuantumCircuit(3).x(0)
        dist = repro.measurement_distribution(circuit)
        assert set(dist) == {bitstring(1, 3)} == {"100"}


class TestNoiseModel:
    def test_event_validation(self):
        with pytest.raises(SimulationError):
            NoiseEvent(probability=1.5, qubits=(0,))
        with pytest.raises(SimulationError):
            NoiseEvent(probability=0.1, kind="gamma-ray", qubits=(0,))
        with pytest.raises(SimulationError):
            NoiseEvent(probability=0.1, qubits=())

    def test_scaling_is_exact_power(self):
        events = (NoiseEvent(0.2, qubits=(0,)), NoiseEvent(0.05, qubits=(1,)))
        model = NoiseModel(events)
        squared = model.scaled(2.0)
        assert squared.analytic_eps() == pytest.approx(
            model.analytic_eps() ** 2, rel=1e-12
        )
        assert model.scaled(0.0).analytic_eps() == pytest.approx(1.0)

    def test_program_schedule_matches_analytic_eps(self, compiled_uf20):
        """The event product reproduces metrics.fidelity.program_eps."""
        program = compiled_uf20.program
        schedule = schedule_from_program(program)
        model = NoiseModel(schedule.events)
        assert model.analytic_eps() == pytest.approx(
            program_eps(program), rel=1e-9
        )

    def test_device_profile_changes_event_rates(self, compiled_small):
        baseline = schedule_from_program(compiled_small.program)
        nextgen = schedule_from_program(
            compiled_small.program, repro.get_device("rubidium-nextgen").hardware
        )
        assert NoiseModel(nextgen.events).analytic_eps() > NoiseModel(
            baseline.events
        ).analytic_eps()


class TestRunSchedule:
    def test_readout_errors_flip_bits_exactly(self):
        schedule = Schedule(
            name="readout",
            num_qubits=2,
            instructions=[],
            events=(
                NoiseEvent(0.5, kind=KIND_READOUT, qubits=(0,)),
            ),
        )
        execution = run_schedule(schedule, shots=4000, seed=1)
        assert set(execution.counts) <= {"00", "10"}
        flipped = execution.counts.get("10", 0)
        assert abs(flipped / 4000 - 0.5) < 0.05
        assert execution.error_free_shots == 4000 - flipped

    def test_pauli_event_exact_trajectory(self):
        schedule = Schedule(
            name="pauli",
            num_qubits=1,
            instructions=[],
            events=(NoiseEvent(0.5, qubits=(0,), paulis=("x",), position=0),),
        )
        execution = run_schedule(schedule, shots=2000, seed=2)
        assert execution.counts["1"] == 2000 - execution.error_free_shots
        assert execution.stats["approx_shots"] == 0

    def test_approximate_tail_depolarizes(self):
        schedule = Schedule(
            name="approx",
            num_qubits=1,
            instructions=[],
            events=(NoiseEvent(0.5, qubits=(0,), paulis=("x",), position=0),),
        )
        execution = run_schedule(schedule, shots=2000, seed=2, max_trajectories=0)
        # Error shots now coin-flip the bit instead of deterministically
        # flipping it: about half of them still read 0.
        errors = 2000 - execution.error_free_shots
        assert execution.stats["approx_shots"] == errors
        assert abs(execution.counts.get("1", 0) - errors / 2) < errors * 0.2

    def test_eps_monotone_in_scale_with_common_random_numbers(
        self, compiled_small
    ):
        sampled = []
        for scale in (0.25, 1.0, 4.0, 16.0):
            execution = simulate_program(
                compiled_small.program, shots=600, noise=scale, seed=11
            )
            sampled.append(execution.eps_sampled)
        # One seed -> one uniform draw per (shot, event); firing sets only
        # grow with the scale, so the estimate is deterministically
        # non-increasing (and strictly decreasing over this scale span).
        assert sampled == sorted(sampled, reverse=True)
        assert sampled[0] > sampled[-1]

    def test_deterministic_given_seed(self, compiled_small, small_formula):
        def payload(seed):
            return simulate_result(
                compiled_small, shots=400, seed=seed, formula=small_formula
            ).to_dict()

        # The full JSON payload — profile included — is bit-identical
        # for identical seeds (it is content-addressed by the service).
        assert payload(9) == payload(9)
        assert payload(10) != payload(9)

    def test_generator_seed_accepted(self, compiled_small):
        a = simulate_result(compiled_small, shots=50, seed=np.random.default_rng(3))
        b = simulate_result(compiled_small, shots=50, seed=np.random.default_rng(3))
        assert a.counts == b.counts
        assert a.seed is None  # generators cannot be recorded

    def test_noiseless_matches_exact_distribution(self, compiled_small):
        execution = simulate_result(compiled_small, shots=6000, noise=None, seed=0)
        assert execution.eps_sampled == 1.0
        assert execution.eps_analytic == 1.0
        circuit = compiled_small.as_circuit()
        exact = repro.measurement_distribution(circuit)
        for bits, count in execution.counts.items():
            assert abs(count / 6000 - exact.get(bits, 0.0)) < 0.05

    def test_shot_validation(self, compiled_small):
        with pytest.raises(SimulationError):
            simulate_result(compiled_small, shots=0)
        with pytest.raises(SimulationError):
            simulate_result(compiled_small, shots=10, max_trajectories=-1)

    def test_formula_mismatch_rejected(self, compiled_small):
        other = CnfFormula.from_lists([[1, 2]], num_vars=2)
        with pytest.raises(SimulationError):
            simulate_result(compiled_small, shots=10, formula=other)


class TestScoring:
    def test_score_samples_manual(self):
        formula = CnfFormula.from_lists([[1], [2], [-1, -2]], num_vars=2)
        # Every assignment violates at least one clause; basis 1 and 3
        # (x1 true) each leave exactly one clause unsatisfied.
        scores = score_samples(formula, np.array([1, 1, 3]))
        assert scores["energy"] == pytest.approx(1.0)
        assert scores["best_satisfied"] == 2.0
        assert scores["optimum_satisfied"] == 2.0
        assert scores["approximation_ratio"] == pytest.approx(1.0)

    def test_formula_energies_agrees_with_counting(self):
        formula = repro.random_ksat(5, 12, seed=4)
        energies = repro.qaoa.formula_energies(formula)
        for basis in (0, 7, 19, 31):
            assignment = [(basis >> q) & 1 == 1 for q in range(5)]
            expected = formula.num_clauses - formula.num_satisfied(assignment)
            assert energies[basis] == pytest.approx(expected)


class TestExecutionResult:
    def test_json_round_trip(self, compiled_small, small_formula):
        execution = simulate_result(
            compiled_small, shots=200, seed=5, formula=small_formula
        )
        payload = execution.to_dict()
        again = ExecutionResult.from_dict(payload)
        assert again.to_dict() == payload

    def test_schema_guard(self):
        with pytest.raises(ValueError):
            ExecutionResult.from_dict({"schema": 999, "workload": "x", "shots": 1})

    def test_wilson_interval_sane(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        zero_low, zero_high = wilson_interval(0, 100)
        assert zero_low == 0.0 and zero_high > 0.0
        full_low, full_high = wilson_interval(100, 100)
        assert full_low < 1.0 and full_high == 1.0


class TestStackThreading:
    def test_compile_simulate_attaches_execution(self, small_formula):
        result = repro.compile(
            small_formula, target="fpqa", simulate={"shots": 150, "seed": 2}
        )
        assert result.execution is not None
        assert result.execution["shots"] == 150
        assert result.execution["approximation_ratio"] is not None
        round_tripped = repro.CompilationResult.from_dict(result.to_dict())
        assert round_tripped.execution == result.execution

    def test_canonical_options_validation(self):
        assert canonical_sim_options(None) is None
        assert canonical_sim_options(True)["shots"] == 1024
        with pytest.raises(SimulationError):
            canonical_sim_options({"shots": 0})
        with pytest.raises(SimulationError):
            canonical_sim_options({"bogus": 1})
        with pytest.raises(SimulationError):
            canonical_sim_options({"seed": np.random.default_rng(0)})

    def test_session_simulate_cells_are_distinct(self, small_formula, tmp_path):
        session = repro.CompilerSession(cache_dir=tmp_path)
        simulated = session.compile(
            small_formula, target="fpqa", simulate={"shots": 100, "seed": 1}
        )
        assert simulated.execution is not None
        hit = session.compile(
            small_formula, target="fpqa", simulate={"shots": 100, "seed": 1}
        )
        assert hit.cached and hit.execution == simulated.execution
        plain = session.compile(small_formula, target="fpqa")
        assert plain.execution is None and not plain.cached
        # A disk-cache reload keeps the execution payload.
        fresh = repro.CompilerSession(cache_dir=tmp_path)
        reloaded = fresh.compile(
            small_formula, target="fpqa", simulate={"shots": 100, "seed": 1}
        )
        assert reloaded.cached and reloaded.execution == simulated.execution

    def test_compile_many_simulates_each_cell(self, small_formula):
        session = repro.CompilerSession()
        rows = session.compile_many(
            [small_formula],
            targets=("fpqa", "superconducting"),
            simulate={"shots": 80, "seed": 3},
        )
        assert all(row.execution is not None for row in rows)
        assert all(row.execution["shots"] == 80 for row in rows)

    def test_simulation_failure_becomes_error_row(self, small_formula):
        session = repro.CompilerSession()
        row = session.compile(
            small_formula, target="atomique", simulate={"shots": 10}
        )
        assert row.error is not None and "SimulationError" in row.error

    def test_as_circuit_fpqa_is_reconstruction(self, compiled_small):
        from repro.checker import reconstruct_circuit

        assert compiled_small.as_circuit() == reconstruct_circuit(
            compiled_small.program
        )

    def test_as_circuit_gate_level_and_missing(self, small_formula):
        sc = repro.compile(small_formula, target="superconducting")
        assert sc.as_circuit() is sc.native_circuit
        bare = repro.CompilationResult(target="x", workload="w", num_qubits=1)
        with pytest.raises(TargetError):
            bare.as_circuit()

    def test_superconducting_simulation_uses_calibration(self, small_formula):
        result = repro.compile(
            small_formula, target="superconducting", device="heavyhex-23"
        )
        execution = result.simulate(shots=300, seed=4, formula=small_formula)
        assert execution.eps_analytic < 1.0
        assert execution.eps_sampled is not None

    def test_sim_profile_counters_present_and_deterministic(self, compiled_small):
        execution = simulate_result(compiled_small, shots=100, seed=0)
        primitives = execution.profile["primitives"]
        assert any(name.startswith("sim.gates.") for name in primitives)
        assert "sim.events_fired" in primitives
        # No wall-clock fields anywhere: the payload must be stable.
        assert all(set(entry) == {"count"} for entry in primitives.values())


class TestSeededReproducibility:
    """Satellite: identical seeds give identical outputs across paths."""

    def test_random_ksat_generator_and_int_agree(self):
        from_int = repro.random_ksat(8, 20, seed=42)
        from_gen = repro.random_ksat(8, 20, seed=np.random.default_rng(42))
        assert [c.literals for c in from_int] == [c.literals for c in from_gen]

    def test_walksat_and_sampling_accept_generators(self):
        from repro.qaoa import sample_best_assignment
        from repro.sat.solver import walksat

        formula = repro.random_ksat(6, 12, seed=1)
        a = walksat(formula, max_flips=200, seed=np.random.default_rng(7))
        b = walksat(formula, max_flips=200, seed=np.random.default_rng(7))
        assert a == b
        circuit = repro.qaoa_circuit(formula)
        x = sample_best_assignment(formula, circuit, shots=64, seed=np.random.default_rng(3))
        y = sample_best_assignment(formula, circuit, shots=64, seed=np.random.default_rng(3))
        assert x == y
