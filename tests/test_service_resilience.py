"""repro.service.resilience: journal, retries, chaos, shedding, recovery.

Event-loop tests run through ``asyncio.run`` (no pytest-asyncio in the
toolchain).  Every chaotic scenario is seeded via the policies' own
``repro.rng`` generators, so the fault schedules — and therefore the
assertions — are deterministic.  ``REPRO_CHAOS_SEED`` (set by the CI
seed matrix) shifts the acceptance scenario's seed without touching the
invariants it proves.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.sat import CnfFormula
from repro.sat.generator import random_ksat
from repro.service import (
    ArtifactStore,
    ChaosPolicy,
    CompilationService,
    JobJournal,
    JobStatus,
    RetryPolicy,
    ServiceClient,
    ServiceOverloaded,
    ServiceServer,
    ServiceTimeout,
    WorkerCrashed,
    replay_journal,
    serve,
)
from repro.service.protocol import workload_to_payload
from repro.targets import Workload

#: CI sets this to sweep the acceptance scenario across seeds.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _formula(name: str = "res", seed: int = 0) -> CnfFormula:
    clauses = [[1, -2, 3], [-1, 2, 4], [2, 3, -4], [1, 2, -3], [-2, -3, 4]]
    return CnfFormula.from_lists(
        clauses[: 2 + (seed % 4)], num_vars=4, name=f"{name}-{seed}"
    )


async def _drain(service: CompilationService) -> None:
    """Wait until nothing is queued, running, or backing off."""
    while (
        service.stats()["jobs_pending"]
        or service._inflight
        or service._retry_tasks
    ):
        await asyncio.sleep(0.005)


# ----------------------------------------------------------------------
# JobJournal
# ----------------------------------------------------------------------
class TestJobJournal:
    def test_lifecycle_round_trip(self, tmp_path):
        async def run():
            journal = JobJournal(tmp_path / "j.jsonl", fsync_batch=1)
            store = ArtifactStore(directory=tmp_path / "store")
            async with CompilationService(
                shards=1, backend="inline", store=store, journal=journal
            ) as service:
                job = await service.submit(_formula(seed=1), target="fpqa")
                result = await job.future
                assert result.error is None
            journal.close()
            records = replay_journal(tmp_path / "j.jsonl")
            assert [r.status for r in records] == ["done"]
            assert records[0].journal_id == job.journal_id
            assert records[0].workload["kind"] == "cnf"
            assert records[0].target == "fpqa"

        asyncio.run(run())

    def test_cache_hit_still_journals_done(self, tmp_path):
        """A warm resubmission is an accepted job: it must reach a
        terminal journal state like any other."""

        async def run():
            journal = JobJournal(tmp_path / "j.jsonl", fsync_batch=1)
            async with CompilationService(
                shards=1, backend="inline", journal=journal
            ) as service:
                first = await service.submit(_formula(seed=2))
                await first.future
                second = await service.submit(_formula(seed=2))
                await second.future
                assert second.from_cache
            journal.close()
            records = replay_journal(tmp_path / "j.jsonl")
            assert sorted(r.status for r in records) == ["done", "done"]

        asyncio.run(run())

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync_batch=1)

        class _Job:
            journal_id = "J1"
            kind = "compile"
            target = "fpqa"
            device = None
            client = "c"
            priority = 0
            timeout = None
            options: dict = {}
            simulate = None
            analyze = None

        payload = workload_to_payload(Workload.from_formula(_formula()))
        journal.record_submitted(_Job(), payload)
        journal.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"e": "done", "id": "J1"')  # crash mid-write
        records = replay_journal(path)
        assert len(records) == 1
        assert records[0].status == "submit"  # torn `done` never landed

    def test_junk_and_unknown_ids_are_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            "not json at all\n"
            '{"e": "start", "id": "J9", "attempt": 1}\n'
            "[1, 2, 3]\n",
            encoding="utf-8",
        )
        assert replay_journal(path) == []

    def test_compaction_drops_terminal_keeps_pending_ids(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync_batch=1)
        payload = workload_to_payload(Workload.from_formula(_formula()))

        class _Job:
            kind = "compile"
            target = "fpqa"
            device = None
            client = "c"
            priority = 0
            timeout = None
            options: dict = {}
            simulate = None
            analyze = None
            attempts = 1
            crashes = 0

        done, pending = _Job(), _Job()
        done.journal_id = journal.next_id()
        pending.journal_id = journal.next_id()
        journal.record_submitted(done, payload)
        journal.record_submitted(pending, payload)
        journal.record_done(done)
        records = journal.replay()
        journal.compact([r for r in records if not r.terminal])
        # The compacted journal holds exactly the pending submit line,
        # under its original id, and stays appendable.
        journal.record_started(pending)
        journal.close()
        after = replay_journal(path)
        assert [r.journal_id for r in after] == [pending.journal_id]
        assert after[0].status == "start"
        # Fresh ids continue past everything ever written.
        reopened = JobJournal(path, fsync_batch=1)
        assert int(reopened.next_id()[1:]) > int(pending.journal_id[1:])
        reopened.close()

    def test_write_errors_degrade_not_crash(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync_batch=1)
        journal._handle.close()  # simulate the disk going away
        journal.append({"e": "done", "id": "J1"})
        assert journal.write_errors == 1
        assert journal.records_written == 0

    def test_fsync_batching(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync_batch=3)
        for i in range(7):
            journal.append({"e": "done", "id": f"J{i}"})
        assert journal.syncs == 2  # after records 3 and 6
        journal.sync()
        assert journal.syncs == 3  # the straggler
        journal.close()


# ----------------------------------------------------------------------
# RetryPolicy / ChaosPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(poison_crashes=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_should_retry_bounds(self):
        policy = RetryPolicy(max_attempts=3, poison_crashes=2)
        assert policy.should_retry(attempts=1, crashes=0)
        assert policy.should_retry(attempts=2, crashes=1)
        assert not policy.should_retry(attempts=3, crashes=0)
        assert not policy.should_retry(attempts=1, crashes=2)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, max_delay=1.0, jitter=0.0, seed=0
        )
        delays = [policy.delay(a) for a in range(1, 7)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays == sorted(delays)
        assert delays[-1] == pytest.approx(1.0)  # capped

    def test_jitter_is_seeded(self):
        a = [RetryPolicy(seed=7).delay(2) for _ in range(1)]
        b = [RetryPolicy(seed=7).delay(2) for _ in range(1)]
        assert a == b
        base = RetryPolicy(jitter=0.0).delay(2)
        jittered = RetryPolicy(jitter=0.5, seed=7).delay(2)
        assert base <= jittered <= base * 1.5


class TestChaosPolicy:
    def test_seeded_schedule_is_reproducible(self):
        rolls_a = [ChaosPolicy(worker_crash=0.5, seed=3).roll("worker_crash")
                   for _ in range(1)]
        policy_a = ChaosPolicy(worker_crash=0.5, seed=3)
        policy_b = ChaosPolicy(worker_crash=0.5, seed=3)
        schedule_a = [policy_a.roll("worker_crash") for _ in range(50)]
        schedule_b = [policy_b.roll("worker_crash") for _ in range(50)]
        assert schedule_a == schedule_b
        assert any(schedule_a) and not all(schedule_a)
        assert policy_a.injected["worker_crash"] == sum(schedule_a)
        assert rolls_a[0] == schedule_a[0]

    def test_zero_rate_kind_consumes_no_draw(self):
        """Enabling one fault must not perturb another's schedule."""
        solo = ChaosPolicy(worker_crash=0.5, seed=3)
        mixed = ChaosPolicy(worker_crash=0.5, socket_drop=0.0, seed=3)
        interleaved = []
        for _ in range(20):
            mixed.roll("socket_drop")  # zero rate: no RNG consumption
            interleaved.append(mixed.roll("worker_crash"))
        assert interleaved == [solo.roll("worker_crash") for _ in range(20)]

    def test_max_faults_budget(self):
        policy = ChaosPolicy(worker_crash=1.0, max_faults=2, seed=0)
        fired = [policy.roll("worker_crash") for _ in range(10)]
        assert sum(fired) == 2
        assert policy.total_injected == 2

    def test_unknown_kind_and_bad_rate(self):
        with pytest.raises(ValueError):
            ChaosPolicy(worker_crash=1.5)
        with pytest.raises(ValueError):
            ChaosPolicy().roll("meteor_strike")


# ----------------------------------------------------------------------
# Supervision: retries, dead letters, hangs, disk faults
# ----------------------------------------------------------------------
class TestSupervision:
    def test_crash_is_retried_to_success(self, tmp_path):
        async def run():
            journal = JobJournal(tmp_path / "j.jsonl", fsync_batch=1)
            chaos = ChaosPolicy(worker_crash=1.0, max_faults=1, seed=0)
            async with CompilationService(
                shards=1,
                backend="inline",
                journal=journal,
                chaos=chaos,
                retry=RetryPolicy(base_delay=0.001, seed=0),
            ) as service:
                job = await service.submit(_formula(seed=3))
                result = await job.future
                assert result.error is None
                assert job.attempts == 2
                assert job.crashes == 1
                stats = service.stats()["resilience"]
                assert stats["retries"] == 1
                assert stats["worker_restarts"] == 1
                assert service.metrics.value("service.retries", kind="crash") == 1
            journal.close()
            statuses = {r.journal_id: r.status
                        for r in replay_journal(tmp_path / "j.jsonl")}
            assert statuses == {job.journal_id: "done"}

        asyncio.run(run())

    def test_poison_job_dead_letters(self, tmp_path):
        async def run():
            journal = JobJournal(tmp_path / "j.jsonl", fsync_batch=1)
            chaos = ChaosPolicy(worker_crash=1.0, seed=0)  # crashes forever
            async with CompilationService(
                shards=1,
                backend="inline",
                journal=journal,
                chaos=chaos,
                retry=RetryPolicy(
                    max_attempts=5, poison_crashes=2, base_delay=0.001
                ),
            ) as service:
                job = await service.submit(_formula(seed=4))
                follower = await service.submit(_formula(seed=4))
                assert follower.from_cache  # single-flight duplicate
                result = await job.future
                assert result.error is not None
                assert "DeadLetter" in result.error
                assert job.status is JobStatus.DEAD
                assert job.crashes == 2  # quarantined on the second kill
                # The follower shares the terminal result, exactly once.
                assert (await follower.future).error == result.error
                assert follower.status is JobStatus.DEAD
                dead = list(service.dead_letters)
                assert len(dead) == 1
                assert dead[0]["job"] == job.job_id
                assert dead[0]["status"] == "dead"
                assert "DeadLetter" in dead[0]["error"]
                assert service.metrics.value(
                    "service.dead_letter", kind="compile"
                ) == 1
            journal.close()
            records = replay_journal(tmp_path / "j.jsonl")
            assert sorted(r.status for r in records) == ["dead", "dead"]

        asyncio.run(run())

    def test_deterministic_failure_is_not_retried(self):
        async def run():
            async with CompilationService(
                shards=1, backend="inline"
            ) as service:

                async def boom(job, shard, loop):
                    raise ValueError("bad input, every time")

                service._execute = boom
                job = await service.submit(_formula(seed=5))
                result = await job.future
                assert "ValueError: bad input, every time" in result.error
                assert job.attempts == 1  # no retry for deterministic errors
                assert service.stats()["resilience"]["retries"] == 0

        asyncio.run(run())

    def test_hung_worker_trips_deadline_and_retries(self):
        async def run():
            # The stall (an async sleep) exceeds the hang deadline; the
            # supervisor abandons the attempt and the retry succeeds.
            chaos = ChaosPolicy(
                worker_stall=1.0, stall_seconds=5.0, max_faults=1, seed=0
            )
            async with CompilationService(
                shards=1,
                backend="inline",
                chaos=chaos,
                hang_seconds=0.05,
                retry=RetryPolicy(base_delay=0.001),
            ) as service:
                job = await service.submit(_formula(seed=6))
                result = await job.future
                assert result.error is None
                assert job.attempts == 2
                assert service.metrics.value("service.failures", kind="hang") == 1
                assert service.stats()["resilience"]["worker_restarts"] == 1

        asyncio.run(run())

    def test_disk_write_failure_degrades_store_not_job(self, tmp_path):
        async def run():
            chaos = ChaosPolicy(disk_fail=1.0, max_faults=1, seed=0)
            store = ArtifactStore(directory=tmp_path / "store", chaos=chaos)
            async with CompilationService(
                shards=1, backend="inline", store=store
            ) as service:
                job = await service.submit(_formula(seed=7))
                result = await job.future
                assert result.error is None  # the job still delivered
                assert service.metrics.value("service.store_errors") == 1
                # The memory tier kept the artifact despite the disk fault.
                warm = await service.submit(_formula(seed=7))
                assert (await warm.future).error is None
                assert warm.from_cache

        asyncio.run(run())

    def test_real_broken_executor_counts_as_crash(self):
        async def run():
            async with CompilationService(
                shards=1,
                backend="inline",
                retry=RetryPolicy(max_attempts=1),
            ) as service:

                async def die(job, shard, loop):
                    raise WorkerCrashed("pool worker died")

                service._execute = die
                job = await service.submit(_formula(seed=8))
                result = await job.future
                assert "DeadLetter" in result.error
                assert service.metrics.value("service.failures", kind="crash") == 1

        asyncio.run(run())


# ----------------------------------------------------------------------
# Load shedding
# ----------------------------------------------------------------------
class TestLoadShedding:
    def test_submit_sheds_past_high_water_mark(self):
        async def run():
            async with CompilationService(
                shards=1, backend="inline", max_pending=0
            ) as service:
                with pytest.raises(ServiceOverloaded) as excinfo:
                    await service.submit(_formula(seed=9))
                assert excinfo.value.retry_after > 0
                assert "retry after" in str(excinfo.value)
                assert service.stats()["resilience"]["shed"] == 1
                assert service.metrics.value("service.shed") == 1

        asyncio.run(run())

    def test_cache_and_inflight_hits_are_never_shed(self):
        async def run():
            async with CompilationService(
                shards=1, backend="inline"
            ) as service:
                job = await service.submit(_formula(seed=10))
                await job.future
                service.max_pending = 0  # now everything new sheds...
                warm = await service.submit(_formula(seed=10))
                assert warm.from_cache  # ...but a hit costs no queue slot
                with pytest.raises(ServiceOverloaded):
                    await service.submit(_formula(seed=11))

        asyncio.run(run())

    def test_server_emits_shed_event_and_client_backs_off(self, tmp_path):
        async def run():
            socket = tmp_path / "weaver.sock"
            service = CompilationService(
                shards=1, backend="inline", max_pending=0
            )
            async with ServiceServer(service, socket):
                async with await ServiceClient.connect(socket) as client:
                    with pytest.raises(ServiceOverloaded):
                        await client.submit(_formula(seed=12), retries=0)
                    # With retries, the client sleeps the server's
                    # retry_after hint and resubmits; the overload
                    # clears during the backoff window.
                    async def lift():
                        await asyncio.sleep(0.02)  # < retry_after (>= 0.1)
                        service.max_pending = 16

                    lifter = asyncio.create_task(lift())
                    out = await client.submit(_formula(seed=12), retries=2)
                    await lifter
                    assert out.result.error is None
                    # Both rejections were counted (explicit + retried).
                    assert service.stats()["resilience"]["shed"] == 2

        asyncio.run(run())


# ----------------------------------------------------------------------
# Timeout paths (satellite coverage)
# ----------------------------------------------------------------------
class TestTimeoutPaths:
    def test_per_job_budget_expiry_mid_compile(self):
        async def run():
            async with CompilationService(
                shards=1, backend="inline"
            ) as service:
                job = await service.submit(
                    random_ksat(24, 100, seed=1), timeout=1e-9
                )
                result = await job.future
                assert result.timed_out
                # A budget expiry is a *deterministic* outcome (the
                # budget is part of the content address): never retried.
                assert job.attempts == 1
                assert service.stats()["resilience"]["retries"] == 0

        asyncio.run(run())

    def test_client_wait_timeout_cleans_inbox_and_survives(self, tmp_path):
        async def run():
            socket = tmp_path / "weaver.sock"
            service = CompilationService(shards=1, backend="thread")
            async with ServiceServer(service, socket):
                client = await ServiceClient.connect(socket)
                try:
                    with pytest.raises(ServiceTimeout):
                        await client.submit(
                            random_ksat(20, 80, seed=2), wait_timeout=1e-4
                        )
                    # Satellite: the expired request's inbox must not
                    # leak on a long-lived client...
                    assert client._inboxes == {}
                    # ...and the connection stays fully usable.
                    pong = await client.ping()
                    assert pong["event"] == "pong"
                    out = await client.submit(_formula(seed=13))
                    assert out.result.error is None
                    assert client._inboxes == {}
                finally:
                    await client.close()

        asyncio.run(run())

    def test_wait_timeout_racing_completion_is_idempotent(self, tmp_path):
        """Timing out on a job that completes anyway: the resubmission
        is a cache hit, not a second execution."""

        async def run():
            socket = tmp_path / "weaver.sock"
            service = CompilationService(shards=1, backend="thread")
            async with ServiceServer(service, socket):
                workload = random_ksat(16, 60, seed=3)
                async with await ServiceClient.connect(socket) as client:
                    try:
                        await client.submit(workload, wait_timeout=1e-4)
                    except ServiceTimeout:
                        pass  # lost the race; the server keeps compiling
                    out = await client.submit(workload)  # idempotent
                    assert out.result.error is None
                compiles = service.profiler.profile()["primitives"].get(
                    "service.compile.fpqa", {}
                )
                assert compiles.get("count", 0) == 1

        asyncio.run(run())

    def test_shutdown_with_queued_jobs_recovers_on_restart(self, tmp_path):
        """Jobs still queued at shutdown stay incomplete in the journal
        and are replayed to completion by the next service."""

        async def run():
            path = tmp_path / "j.jsonl"
            store_dir = tmp_path / "store"
            journal = JobJournal(path, fsync_batch=1)
            service = CompilationService(
                shards=1,
                backend="thread",
                store=ArtifactStore(directory=store_dir),
                journal=journal,
            )
            await service.start()
            jobs = [
                await service.submit(_formula(seed=s), client=f"c{s}")
                for s in range(4)
            ]
            await service.stop()  # most jobs never ran
            journal.close()
            incomplete = [
                r for r in replay_journal(path) if not r.terminal
            ]
            assert incomplete  # the queued tail survived as incomplete

            journal2 = JobJournal(path, fsync_batch=1)
            service2 = CompilationService(
                shards=1,
                backend="inline",
                store=ArtifactStore(directory=store_dir),
                journal=journal2,
            )
            async with service2:
                summary = await service2.recover()
                assert summary["recovered"] == len(incomplete)
                assert summary["unreplayable"] == 0
                await _drain(service2)
            journal2.close()
            final = replay_journal(path)
            assert len(final) == len(jobs)
            assert all(r.status == "done" for r in final)

        asyncio.run(run())


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_recover_requires_journal_and_running(self, tmp_path):
        from repro.exceptions import TargetError

        async def run():
            plain = CompilationService(shards=1, backend="inline")
            async with plain:
                with pytest.raises(TargetError):
                    await plain.recover()
            journal = JobJournal(tmp_path / "j.jsonl")
            stopped = CompilationService(
                shards=1, backend="inline", journal=journal
            )
            with pytest.raises(TargetError):
                await stopped.recover()
            journal.close()

        asyncio.run(run())

    def test_recovery_span_and_metrics(self, tmp_path):
        from repro.telemetry import configure

        async def run():
            path = tmp_path / "j.jsonl"
            journal = JobJournal(path, fsync_batch=1)
            service = CompilationService(
                shards=1, backend="thread", journal=journal
            )
            await service.start()
            await service.submit(_formula(seed=20))
            await service.stop()  # leaves the job incomplete
            journal.close()

            tracer = configure(True)
            try:
                journal2 = JobJournal(path, fsync_batch=1)
                service2 = CompilationService(
                    shards=1, backend="inline", journal=journal2
                )
                async with service2:
                    summary = await service2.recover()
                    await _drain(service2)
                journal2.close()
            finally:
                spans = tracer.export()
                configure(False)
            names = [span["name"] for span in spans]
            assert "service.recovery" in names
            recovery = next(s for s in spans if s["name"] == "service.recovery")
            assert recovery["attrs"]["recovered"] == summary["recovered"] == 1

        asyncio.run(run())

    def test_unreplayable_record_is_counted_not_fatal(self, tmp_path):
        async def run():
            path = tmp_path / "j.jsonl"
            path.write_text(
                json.dumps(
                    {
                        "e": "submit",
                        "id": "J1",
                        "kind": "compile",
                        "workload": {"kind": "cnf", "text": "not dimacs"},
                        "target": "fpqa",
                    }
                )
                + "\n",
                encoding="utf-8",
            )
            journal = JobJournal(path, fsync_batch=1)
            async with CompilationService(
                shards=1, backend="inline", journal=journal
            ) as service:
                summary = await service.recover()
                assert summary == {
                    "records": 1,
                    "completed": 0,
                    "dead": 0,
                    "recovered": 0,
                    "unreplayable": 1,
                }
            journal.close()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Chaos acceptance: kill -9 analogue, 10% crashes, exactly-once
# ----------------------------------------------------------------------
def _mixed_submissions(count: int):
    """50 distinct jobs, mixed compile + sim, deterministic content."""
    subs = []
    for i in range(count):
        workload = random_ksat(6, 14, seed=100 + i, name=f"chaos-{i}")
        simulate = {"shots": 8, "seed": i} if i % 5 == 0 else None
        subs.append((workload, simulate))
    return subs


async def _chaos_scenario(tmp_path, seed: int) -> str:
    """Accept 50 mixed jobs, "kill -9" mid-stream, recover under 10%
    worker crashes; return the deterministic summary line."""
    path = tmp_path / f"journal-{seed}.jsonl"
    store_dir = tmp_path / f"store-{seed}"
    submissions = _mixed_submissions(50)

    # -- phase 1: complete the head of the stream, accept the rest, die.
    # (An inline worker never yields mid-queue, so "killed mid-stream"
    # is staged deterministically: the first batch runs to completion,
    # the second is accepted + journaled but torn down before a worker
    # ever picks it up — exactly the disk state a kill -9 leaves.)
    journal = JobJournal(path, fsync_batch=1)
    service = CompilationService(
        shards=2,
        backend="inline",
        store=ArtifactStore(directory=store_dir),
        journal=journal,
    )
    await service.start()
    head = [
        await service.submit(w, simulate=sim, client=f"t{i % 3}")
        for i, (w, sim) in enumerate(submissions[:12])
    ]
    head_results = await asyncio.gather(*(job.future for job in head))
    assert all(r.error is None for r in head_results)
    tail = [
        await service.submit(w, simulate=sim, client=f"t{i % 3}")
        for i, (w, sim) in enumerate(submissions[12:], start=12)
    ]
    assert len(tail) == 38
    phase1_execs = sum(service._per_shard_jobs)
    await service.stop()  # the tail never ran
    journal.close()

    records1 = replay_journal(path)
    assert len(records1) == 50  # every accepted job is journaled
    done1 = {r.journal_id for r in records1 if r.status == "done"}
    pending1 = {r.journal_id for r in records1 if not r.terminal}
    assert len(done1) == 12 and len(pending1) == 38

    # -- phase 2: restart, replay, and finish under injected crashes ---
    journal2 = JobJournal(path, fsync_batch=1)
    chaos = ChaosPolicy(worker_crash=0.10, seed=seed)
    service2 = CompilationService(
        shards=2,
        backend="inline",
        store=ArtifactStore(directory=store_dir),
        journal=journal2,
        chaos=chaos,
        # Zero backoff: retries re-enqueue on the next loop tick, so the
        # execution order — and with it the seeded fault schedule — is
        # bit-reproducible (no real-time timer races).
        retry=RetryPolicy(base_delay=0.0, seed=seed),
    )
    await service2.start()
    summary = await service2.recover()
    assert summary["recovered"] == 38
    await _drain(service2)
    phase2_execs = sum(service2._per_shard_jobs)
    stats2 = service2.stats()["resilience"]
    await service2.stop()
    journal2.close()

    # -- invariants: every accepted job done-or-dead exactly once ------
    # recover() compacted the terminal phase-1 records away, so the
    # journal now tracks exactly the jobs that were pending at the kill.
    records2 = replay_journal(path)
    assert {r.journal_id for r in records2} == pending1
    done2 = {r.journal_id for r in records2 if r.status == "done"}
    dead2 = {r.journal_id for r in records2 if r.status == "dead"}
    assert done2 | dead2 == pending1  # all terminal now
    assert not done2 & dead2
    assert not done1 & (done2 | dead2)  # finished work never re-ran
    # No loss, no duplicate execution: each of the 50 distinct artifacts
    # was compiled at most once across both lives (dead letters never
    # complete; completed work is served from the content-addressed
    # store on any later touch).
    assert phase1_execs == len(done1)
    assert phase2_execs == len(done2)
    assert len(done1) + len(done2) + len(dead2) == 50
    return (
        f"jobs=50 done={len(done1) + len(done2)} dead={len(dead2)} "
        f"recovered={summary['recovered']} "
        f"retries={stats2['retries']} "
        f"crashes_injected={chaos.injected['worker_crash']}"
    )


class TestChaosAcceptance:
    def test_kill9_recovery_exactly_once(self, tmp_path):
        async def run():
            return await _chaos_scenario(tmp_path, seed=CHAOS_SEED)

        summary = asyncio.run(run())
        assert "jobs=50" in summary

    def test_summary_is_bit_identical_per_seed(self, tmp_path):
        async def run(subdir: str) -> str:
            base = tmp_path / subdir
            base.mkdir()
            return await _chaos_scenario(base, seed=CHAOS_SEED)

        first = asyncio.run(run("a"))
        second = asyncio.run(run("b"))
        assert first == second


# ----------------------------------------------------------------------
# Socket-level chaos
# ----------------------------------------------------------------------
class TestSocketChaos:
    def test_socket_drop_then_idempotent_resubmit(self, tmp_path):
        from repro.service import submit_once

        async def run():
            socket = tmp_path / "weaver.sock"
            ready = asyncio.Event()
            chaos = ChaosPolicy(socket_drop=1.0, max_faults=1, seed=0)
            server_task = asyncio.create_task(
                serve(
                    socket,
                    shards=1,
                    backend="inline",
                    store_dir=tmp_path / "store",
                    chaos=chaos,
                    ready=ready,
                )
            )
            await ready.wait()
            # First reply is chaos-dropped; submit_once reconnects and
            # the resubmission completes (as a cache hit when the first
            # attempt's compile landed).
            out = await submit_once(socket, _formula(seed=30))
            assert out.result.error is None
            async with await ServiceClient.connect(socket) as client:
                await client.shutdown()
            final = await server_task
            assert final["resilience"]["chaos"]["injected"]["socket_drop"] == 1

        asyncio.run(run())
