"""End-to-end tests of the Weaver FPQA compiler (wOptimizer, §5).

The central invariant: the emitted program's logical circuit must be
functionally equivalent to the plain QAOA circuit of the input formula,
for every lowering mode and clause-arity mix — and every emitted
instruction was validated by the device state machine during generation.
"""

import pytest

from repro.circuits import circuits_equivalent
from repro.fpqa import FPQAHardwareParams
from repro.passes import WeaverFPQACompiler, compile_formula
from repro.qaoa import QaoaParameters, qaoa_circuit
from repro.sat import CnfFormula, random_ksat


class TestEquivalence:
    def test_paper_example_compressed(self, compiled_paper_example):
        result = compiled_paper_example
        assert circuits_equivalent(
            result.program.logical_circuit(), result.native_circuit
        )

    def test_paper_example_ladder(self, compiled_paper_example_ladder):
        result = compiled_paper_example_ladder
        assert circuits_equivalent(
            result.program.logical_circuit(), result.native_circuit
        )

    def test_mixed_arity(self, compiled_mixed):
        assert circuits_equivalent(
            compiled_mixed.program.logical_circuit(), compiled_mixed.native_circuit
        )

    def test_mixed_arity_ladder(self, mixed_formula):
        result = compile_formula(mixed_formula, compression=False, measure=False)
        assert circuits_equivalent(
            result.program.logical_circuit(), result.native_circuit
        )

    def test_two_qaoa_layers(self, tiny_formula):
        params = QaoaParameters(gammas=(0.5, 0.8), betas=(0.3, 0.1))
        result = compile_formula(tiny_formula, parameters=params, measure=False)
        reference = qaoa_circuit(tiny_formula, params, measure=False)
        assert circuits_equivalent(result.program.logical_circuit(), reference)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_formulas_compressed(self, seed):
        formula = random_ksat(7, 9, seed=seed)
        result = compile_formula(formula, measure=False)
        assert circuits_equivalent(
            result.program.logical_circuit(), result.native_circuit
        )

    @pytest.mark.parametrize("seed", [10, 11])
    def test_random_formulas_ladder(self, seed):
        formula = random_ksat(6, 7, seed=seed)
        result = compile_formula(formula, compression=False, measure=False)
        assert circuits_equivalent(
            result.program.logical_circuit(), result.native_circuit
        )

    def test_single_clause_formula(self):
        formula = CnfFormula.from_lists([[1, -2, 3]], num_vars=3)
        result = compile_formula(formula, measure=False)
        assert circuits_equivalent(
            result.program.logical_circuit(), result.native_circuit
        )

    def test_unit_clause_only(self):
        formula = CnfFormula.from_lists([[2]], num_vars=2)
        result = compile_formula(formula, measure=False)
        assert circuits_equivalent(
            result.program.logical_circuit(), result.native_circuit
        )


class TestProgramStructure:
    def test_compressed_uses_ccz_pulses(self, compiled_paper_example):
        ops = compiled_paper_example.program.logical_circuit().count_ops()
        assert ops["ccz"] == 2 * 3  # 2 CCZ pulses per clause

    def test_ladder_avoids_ccz(self, compiled_paper_example_ladder):
        ops = compiled_paper_example_ladder.program.logical_circuit().count_ops()
        assert "ccz" not in ops

    def test_ladder_needs_more_pulses(
        self, compiled_paper_example, compiled_paper_example_ladder
    ):
        compressed = compiled_paper_example.program.pulse_counts()["rydberg"]
        ladder = compiled_paper_example_ladder.program.pulse_counts()["rydberg"]
        assert ladder > compressed

    def test_rydberg_pulses_scale_with_colors(self, compiled_paper_example):
        stats = compiled_paper_example.stats
        num_colors = stats["clause-coloring"]["num_colors"]
        rydberg = compiled_paper_example.program.pulse_counts()["rydberg"]
        assert rydberg == 4 * num_colors  # 2 CCZ + 2 CZ stages per zone

    def test_measured_flag(self, uf20):
        result = compile_formula(uf20, measure=True)
        assert result.program.measured

    def test_stats_complete(self, compiled_paper_example):
        stats = compiled_paper_example.stats
        for stage in ("clause-coloring", "color-shuttling", "gate-compression", "total"):
            assert stage in stats

    def test_setup_binds_every_variable(self, compiled_paper_example):
        program = compiled_paper_example.program
        binds = [i for i in program.setup if type(i).__name__ == "BindAtom"]
        assert len(binds) == program.num_qubits

    def test_compile_scales_to_uf20(self, compiled_uf20):
        assert compiled_uf20.compile_seconds < 30.0
        assert compiled_uf20.program.total_pulses > 0

    def test_custom_hardware_threads_through(self, tiny_formula):
        hardware = FPQAHardwareParams().with_overrides(fidelity_ccz=0.9)
        compiler = WeaverFPQACompiler(hardware=hardware)
        result = compiler.compile(tiny_formula, measure=False)
        # CCZ at 0.9 makes compression unprofitable; the pass must notice.
        assert not result.stats["gate-compression"]["use_compression"]
