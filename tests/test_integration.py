"""Integration tests: the paper-scale qualitative claims (§8 takeaways).

These run real compilations at the paper's smallest benchmark size
(uf20, 20 variables / 91 clauses) and assert the *shape* of the results:
who wins on compile time, execution time, and EPS.
"""

import pytest

from repro.baselines import AtomiqueCompiler, WeaverCompiler, run_with_timeout
from repro.checker import WChecker
from repro.metrics import program_duration_us, program_eps
from repro.sat import satlib_instance


@pytest.fixture(scope="module")
def uf20_weaver(uf20):
    return run_with_timeout(WeaverCompiler(), uf20, budget_seconds=120)


@pytest.fixture(scope="module")
def uf20_atomique(uf20):
    return run_with_timeout(AtomiqueCompiler(), uf20, budget_seconds=120)


class TestRq1CompileTime:
    def test_weaver_compiles_uf20_in_seconds(self, uf20_weaver):
        assert uf20_weaver.succeeded
        assert uf20_weaver.compile_seconds < 10.0

    def test_weaver_scales_to_uf75(self):
        result = run_with_timeout(
            WeaverCompiler(), satlib_instance("uf75-01"), budget_seconds=300
        )
        assert result.succeeded
        assert result.compile_seconds < 120.0


class TestRq3Fidelity:
    def test_weaver_eps_beats_atomique_at_uf20(self, uf20_weaver, uf20_atomique):
        """Fig. 12(a): Weaver improves EPS over Atomique at 20 variables."""
        assert uf20_weaver.eps > uf20_atomique.eps

    def test_weaver_eps_reasonable_magnitude(self, uf20_weaver):
        """Fig. 12(a) shows Weaver around 1e-1..1e-2 at 20 variables."""
        assert 1e-3 < uf20_weaver.eps < 0.5


class TestVerification:
    def test_uf20_program_verifies_structurally(self, compiled_uf20):
        checker = WChecker(max_probe_qubits=10)
        report = checker.check(compiled_uf20.program)
        assert not report.operation_failures

    def test_uf20_metrics_consistent(self, compiled_uf20):
        duration = program_duration_us(compiled_uf20.program)
        eps = program_eps(compiled_uf20.program, duration_us=duration)
        assert duration > 0
        assert 0 < eps < 1


class TestCompressionAblation:
    def test_compression_reduces_pulses_and_improves_eps(self, uf20):
        from repro.passes import compile_formula

        on = compile_formula(uf20, compression=True, measure=True)
        off = compile_formula(uf20, compression=False, measure=True)
        assert (
            on.program.pulse_counts()["rydberg"]
            < off.program.pulse_counts()["rydberg"]
        )
        assert program_eps(on.program) > program_eps(off.program)

    def test_dsatur_no_worse_than_greedy_coloring(self, uf20):
        from repro.passes import compile_formula

        dsatur = compile_formula(uf20, measure=False)
        from repro.passes.woptimizer import WeaverFPQACompiler

        greedy = WeaverFPQACompiler(coloring_algorithm="greedy").compile(
            uf20, measure=False
        )
        assert (
            dsatur.stats["clause-coloring"]["num_colors"]
            <= greedy.stats["clause-coloring"]["num_colors"] + 1
        )
