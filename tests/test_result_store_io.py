"""ResultStore JSON persistence: sweeps resume instead of recompiling."""

import json

import pytest

from repro.baselines.base import BaselineResult
from repro.evaluation import EvaluationConfig, ResultStore


def _row(compiler: str, workload: str, **kw) -> BaselineResult:
    defaults = dict(
        num_vars=20,
        num_clauses=91,
        compile_seconds=0.5,
        execution_seconds=0.01,
        eps=0.05,
        num_pulses=1234,
        extra={"num_colors": 7},
    )
    defaults.update(kw)
    return BaselineResult(compiler=compiler, workload=workload, **defaults)


class TestBaselineResultRoundTrip:
    def test_round_trip(self):
        row = _row("weaver", "uf20-01")
        restored = BaselineResult.from_dict(row.to_dict())
        assert restored == row

    def test_round_trip_timed_out(self):
        row = _row("dpqa", "uf50-01", timed_out=True, eps=None, num_pulses=None)
        restored = BaselineResult.from_dict(row.to_dict())
        assert restored.timed_out
        assert restored.eps is None


class TestStorePersistence:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(EvaluationConfig())
        store.results[("weaver", "uf20-01")] = _row("weaver", "uf20-01")
        store.results[("dpqa", "uf50-01")] = _row(
            "dpqa", "uf50-01", timed_out=True, eps=None
        )
        path = tmp_path / "results.json"
        assert store.save(path) == 2

        fresh = ResultStore(EvaluationConfig())
        assert fresh.load(path) == 2
        assert fresh.results.keys() == store.results.keys()
        loaded = fresh.results[("weaver", "uf20-01")]
        assert loaded.eps == pytest.approx(0.05)
        assert loaded.extra["num_colors"] == 7

    def test_loaded_cells_are_not_recompiled(self, tmp_path):
        """A loaded cell short-circuits run() — the resume property."""
        path = tmp_path / "results.json"
        seed = ResultStore(EvaluationConfig())
        marker = _row("weaver", "uf20-01", compile_seconds=123.456)
        seed.results[("weaver", "uf20-01")] = marker
        seed.save(path)

        store = ResultStore(EvaluationConfig())
        store.load(path)
        result = store.run("weaver", "uf20-01")
        assert result.compile_seconds == pytest.approx(123.456)

    def test_load_missing_file_is_noop(self, tmp_path):
        store = ResultStore(EvaluationConfig())
        assert store.load(tmp_path / "absent.json") == 0
        assert not store.results

    def test_load_tolerates_truncated_store(self, tmp_path):
        """A half-written store must not abort the sweep it should resume."""
        path = tmp_path / "results.json"
        store = ResultStore(EvaluationConfig())
        store.results[("weaver", "uf20-01")] = _row("weaver", "uf20-01")
        store.save(path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        fresh = ResultStore(EvaluationConfig())
        with pytest.warns(UserWarning, match="unreadable"):
            assert fresh.load(path) == 0

    def test_save_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "results.json"
        store = ResultStore(EvaluationConfig())
        store.results[("weaver", "uf20-01")] = _row("weaver", "uf20-01")
        store.save(path)
        assert path.exists()
        assert list(tmp_path.iterdir()) == [path]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            ResultStore(EvaluationConfig()).load(path)
