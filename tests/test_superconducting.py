"""Tests for the superconducting path: coupling, SABRE, basis, transpiler."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, circuit_unitary, circuits_equivalent
from repro.exceptions import RoutingError
from repro.linalg import allclose_up_to_global_phase
from repro.passes.native_synthesis import fuse_single_qubit_runs
from repro.superconducting import (
    SabreRouter,
    SuperconductingTranspiler,
    grid_coupling,
    heavy_hex_coupling,
    line_coupling,
    to_ibm_basis,
    washington_backend,
)
from repro.superconducting.basis import count_ibm_ops
from repro.superconducting.transpiler import estimate_duration_us, estimate_eps


class TestCouplingMaps:
    def test_line_structure(self):
        cm = line_coupling(4)
        assert cm.num_qubits == 4
        assert cm.are_connected(1, 2)
        assert not cm.are_connected(0, 3)

    def test_grid_structure(self):
        cm = grid_coupling(2, 3)
        assert cm.num_qubits == 6
        assert cm.are_connected(0, 3)  # vertical
        assert cm.are_connected(0, 1)  # horizontal

    def test_heavy_hex_is_washington_sized(self):
        cm = heavy_hex_coupling()
        assert cm.num_qubits == 127
        assert cm.is_connected()
        assert max(len(adj) for adj in cm.adjacency) == 3  # heavy-hex degree

    def test_distance_matrix_symmetric(self):
        cm = grid_coupling(3, 3)
        dist = cm.distance_matrix()
        assert np.allclose(dist, dist.T)
        assert dist[0, 8] == 4  # Manhattan distance corner to corner

    def test_invalid_edge_rejected(self):
        from repro.superconducting.coupling import CouplingMap

        with pytest.raises(RoutingError):
            CouplingMap(2, [(0, 5)])

    def test_disconnected_map_detected(self):
        from repro.superconducting.coupling import CouplingMap

        cm = CouplingMap(4, [(0, 1), (2, 3)])
        assert not cm.is_connected()


def routed_equivalent(circuit: QuantumCircuit, routing) -> bool:
    """Check a routing result against the original circuit exactly.

    The routed circuit equals (output permutation) . (original embedded at
    the initial layout).
    """
    n = routing.circuit.num_qubits
    embedded = QuantumCircuit(n)
    for inst in circuit.instructions:
        embedded.append(inst.gate, [routing.initial_layout[q] for q in inst.qubits])
    dim = 2**n
    permutation = np.zeros((dim, dim))
    for basis in range(dim):
        bits = [(basis >> i) & 1 for i in range(n)]
        out = list(bits)
        for logical in range(circuit.num_qubits):
            out[routing.final_layout[logical]] = bits[routing.initial_layout[logical]]
        target = sum(v << i for i, v in enumerate(out))
        permutation[target, basis] = 1
    routed_u = circuit_unitary(routing.circuit)
    reference = permutation @ circuit_unitary(embedded)
    return allclose_up_to_global_phase(routed_u, reference)


class TestSabre:
    def test_line_routing_correct(self):
        qc = QuantumCircuit(4).h(0).cx(0, 3).cx(1, 2).cx(0, 2).cx(3, 1)
        routing = SabreRouter(line_coupling(4)).route(qc)
        assert routing.num_swaps > 0
        assert routed_equivalent(qc, routing)

    def test_already_routable_circuit_untouched(self):
        qc = QuantumCircuit(3).cx(0, 1).cx(1, 2)
        routing = SabreRouter(line_coupling(3)).route(qc)
        assert routing.num_swaps == 0

    def test_grid_routing_correct(self):
        rng = np.random.default_rng(7)
        qc = QuantumCircuit(6)
        for _ in range(12):
            a, b = rng.choice(6, size=2, replace=False)
            qc.cz(int(a), int(b))
        routing = SabreRouter(grid_coupling(2, 3)).route(qc)
        assert routed_equivalent(qc, routing)

    def test_all_gates_adjacent_after_routing(self):
        qc = QuantumCircuit(5)
        rng = np.random.default_rng(9)
        for _ in range(15):
            a, b = rng.choice(5, size=2, replace=False)
            qc.cz(int(a), int(b))
        coupling = line_coupling(5)
        routing = SabreRouter(coupling).route(qc)
        for inst in routing.circuit.instructions:
            if len(inst.qubits) == 2:
                assert coupling.are_connected(*inst.qubits)

    def test_too_many_qubits_rejected(self):
        with pytest.raises(RoutingError):
            SabreRouter(line_coupling(2)).route(QuantumCircuit(3))

    def test_three_qubit_gates_rejected(self):
        qc = QuantumCircuit(3).ccz(0, 1, 2)
        with pytest.raises(RoutingError):
            SabreRouter(line_coupling(3)).route(qc)

    def test_duplicate_layout_rejected(self):
        qc = QuantumCircuit(2).cx(0, 1)
        with pytest.raises(RoutingError):
            SabreRouter(line_coupling(2)).route(qc, initial_layout=[0, 0])


class TestBasisTranslation:
    def test_ibm_basis_gate_set(self):
        qc = QuantumCircuit(2).h(0).cz(0, 1).t(1)
        ibm = to_ibm_basis(qc)
        names = {i.name for i in ibm.instructions}
        assert names <= {"rz", "sx", "x", "cx"}

    def test_ibm_basis_preserves_unitary(self):
        qc = QuantumCircuit(3).h(0).cz(0, 1).swap(1, 2).u3(0.2, 0.4, 0.6, 2)
        assert circuits_equivalent(qc, to_ibm_basis(qc))

    def test_virtual_rz_is_free_form(self):
        qc = QuantumCircuit(1).rz(0.7, 0)
        ibm = to_ibm_basis(qc)
        assert ibm.count_ops() == {"rz": 1}  # no SX needed for diagonal gates

    def test_fusion_collapses_runs(self):
        qc = QuantumCircuit(1).h(0).h(0)
        assert len(fuse_single_qubit_runs(qc)) == 0  # H.H = identity dropped

    def test_fusion_preserves_unitary(self):
        qc = QuantumCircuit(2).h(0).t(0).sx(0).cx(0, 1).s(1).h(1)
        assert circuits_equivalent(qc, fuse_single_qubit_runs(qc))

    def test_count_ibm_ops(self):
        qc = QuantumCircuit(2, 2).sx(0).cx(0, 1).measure(0, 0)
        counts = count_ibm_ops(qc)
        assert counts == {"1q": 1, "2q": 1, "measure": 1}


class TestTranspiler:
    def test_full_pipeline_small_circuit(self):
        qc = QuantumCircuit(4).h(0).cx(0, 1).ccz(1, 2, 3).measure_all()
        result = SuperconductingTranspiler().transpile(qc)
        assert result.duration_us > 0
        assert 0 < result.eps < 1
        assert result.counts["2q"] > 0

    def test_qubit_capacity_enforced(self):
        with pytest.raises(RoutingError):
            SuperconductingTranspiler().transpile(QuantumCircuit(200))

    def test_duration_counts_layers(self):
        backend = washington_backend()
        qc = QuantumCircuit(2).cx(0, 1)
        assert estimate_duration_us(qc, backend) == pytest.approx(
            backend.duration_2q_us
        )

    def test_parallel_gates_share_duration(self):
        backend = washington_backend()
        seq = QuantumCircuit(2).sx(0).sx(0)
        par = QuantumCircuit(2).sx(0).sx(1)
        assert estimate_duration_us(par, backend) < estimate_duration_us(seq, backend)

    def test_eps_decreases_with_more_gates(self):
        backend = washington_backend()
        small = QuantumCircuit(2).cx(0, 1)
        large = QuantumCircuit(2)
        for _ in range(30):
            large.cx(0, 1)
        assert estimate_eps(large, backend) < estimate_eps(small, backend)
