"""Tests for the CLI, the QAOA optimizer loop, and Hellinger statistics."""

import json

import pytest

from repro.checker.statistics import (
    distributions_equivalent,
    hellinger_fidelity,
    sampled_distribution,
)
from repro.circuits import QuantumCircuit
from repro.cli import build_parser, main
from repro.exceptions import VerificationError
from repro.qaoa.optimizer import coordinate_descent, grid_search, optimize_angles
from repro.sat import CnfFormula, to_dimacs


@pytest.fixture()
def cnf_file(tmp_path, tiny_formula):
    path = tmp_path / "tiny.cnf"
    path.write_text(to_dimacs(tiny_formula))
    return path


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["compile", "x.cnf", "--gamma", "0.5"])
        assert args.gamma == 0.5

    def test_compile_roundtrip(self, cnf_file, tmp_path, capsys):
        out = tmp_path / "out.wqasm"
        rc = main(["compile", str(cnf_file), "-o", str(out), "--verify"])
        assert rc == 0
        assert out.read_text().startswith("OPENQASM 3.0;")

    def test_check_command(self, cnf_file, tmp_path):
        out = tmp_path / "out.wqasm"
        assert main(["compile", str(cnf_file), "-o", str(out)]) == 0
        assert main(["check", str(out)]) == 0

    def test_check_rejects_corrupted_file(self, cnf_file, tmp_path):
        out = tmp_path / "out.wqasm"
        main(["compile", str(cnf_file), "-o", str(out)])
        text = out.read_text()
        # Corrupt the first local Raman angle in the file.
        corrupted = text.replace("@raman local", "@raman local", 1)
        lines = corrupted.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("@raman local"):
                parts = line.split()
                parts[3] = str(float(parts[3]) + 0.7)
                lines[i] = " ".join(parts)
                break
        out.write_text("\n".join(lines))
        assert main(["check", str(out)]) == 1

    def test_export_command(self, cnf_file, tmp_path):
        out = tmp_path / "gates.json"
        assert main(["export", str(cnf_file), "-o", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["num_qubits"] == 4

    def test_missing_file_is_reported(self):
        assert main(["compile", "/nonexistent.cnf"]) == 2

    def test_compression_flag(self, cnf_file, tmp_path):
        out = tmp_path / "out.wqasm"
        rc = main(["compile", str(cnf_file), "-o", str(out), "--compression", "off"])
        assert rc == 0
        assert "ccz" not in out.read_text()


class TestOptimizer:
    @pytest.fixture(scope="class")
    def formula(self):
        return CnfFormula.from_lists(
            [[1, 2, 3], [-1, 2, 3], [1, -2, 3], [1, 2, -3]], num_vars=3
        )

    def test_grid_search_returns_best_of_grid(self, formula):
        result = grid_search(formula)
        assert result.evaluations == 18
        assert result.expected_unsatisfied == min(v for _, v in result.history)

    def test_coordinate_descent_improves_or_keeps(self, formula):
        warm = grid_search(formula)
        refined = coordinate_descent(formula, initial=warm.parameters, iterations=2)
        assert refined.expected_unsatisfied <= warm.expected_unsatisfied + 1e-12

    def test_descent_validates_iterations(self, formula):
        from repro.exceptions import CircuitError

        with pytest.raises(CircuitError):
            coordinate_descent(formula, iterations=0)

    def test_optimize_beats_random_guessing(self, formula):
        result = optimize_angles(formula, iterations=2)
        assert result.expected_unsatisfied < formula.num_clauses / 8

    def test_multi_layer_replication(self, formula):
        result = optimize_angles(formula, layers=2, iterations=1)
        assert result.parameters.num_layers == 2


class TestHellinger:
    def test_identical_distributions(self):
        p = {"00": 0.5, "11": 0.5}
        assert hellinger_fidelity(p, p) == pytest.approx(1.0)

    def test_disjoint_distributions(self):
        assert hellinger_fidelity({"00": 1.0}, {"11": 1.0}) == pytest.approx(0.0)

    def test_partial_overlap(self):
        p = {"0": 1.0}
        q = {"0": 0.5, "1": 0.5}
        assert hellinger_fidelity(p, q) == pytest.approx(0.5)

    def test_unnormalized_rejected(self):
        with pytest.raises(VerificationError):
            hellinger_fidelity({"0": 0.7}, {"0": 1.0})

    def test_sampled_distribution_close_to_exact(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        sampled = sampled_distribution(circuit, shots=20000, seed=1)
        from repro.circuits import measurement_distribution

        exact = measurement_distribution(circuit)
        assert hellinger_fidelity(sampled, exact) > 0.999

    def test_distributions_equivalent_on_compiled_program(
        self, compiled_paper_example
    ):
        verdict, fidelity = distributions_equivalent(
            compiled_paper_example.program.logical_circuit(),
            compiled_paper_example.native_circuit,
        )
        assert verdict
        assert fidelity == pytest.approx(1.0)

    def test_distributions_differ_for_different_circuits(self):
        a = QuantumCircuit(1).h(0)
        b = QuantumCircuit(1).x(0)
        verdict, fidelity = distributions_equivalent(a, b)
        assert not verdict
        assert fidelity < 0.9
