"""Tests for user-defined gates (OpenQASM ``gate`` subroutines).

Extensibility is Weaver's first requirement (§3.1): new composite
instructions must be expressible without touching the compiler.  These
tests cover parsing, symbolic parameter evaluation, macro expansion,
nesting, and error reporting.
"""

import math

import pytest

from repro.circuits import QuantumCircuit, circuits_equivalent
from repro.exceptions import QasmSemanticError, QasmSyntaxError
from repro.qasm import parse_qasm, qasm_to_circuit
from repro.qasm.ast import BinOp, GateDefinition, Num, Sym, evaluate_param


class TestParsing:
    def test_definition_parsed(self):
        program = parse_qasm(
            "gate mygate a, b { cx a, b; h a; }\nqubit[2] q;\nmygate q[0], q[1];"
        )
        definitions = [s for s in program.statements if isinstance(s, GateDefinition)]
        assert len(definitions) == 1
        assert definitions[0].qubits == ("a", "b")
        assert len(definitions[0].body) == 2

    def test_parameterized_definition(self):
        program = parse_qasm(
            "gate rot(theta) a { rz(theta/2) a; rz(-theta/2) a; }\nqubit[1] q;"
        )
        definition = next(
            s for s in program.statements if isinstance(s, GateDefinition)
        )
        assert definition.params == ("theta",)
        first_param = definition.body[0].params[0]
        assert isinstance(first_param, BinOp)

    def test_body_rejects_indexed_operands(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm("gate g a { h a[0]; }")

    def test_body_rejects_foreign_qubits(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm("gate g a { h b; }")

    def test_unterminated_body(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm("gate g a { h a;")


class TestExprEvaluation:
    def test_symbol_lookup(self):
        assert evaluate_param(Sym("x"), {"x": 2.5}) == 2.5

    def test_unbound_symbol_rejected(self):
        with pytest.raises(QasmSemanticError):
            evaluate_param(Sym("y"), {})

    def test_arithmetic_tree(self):
        expr = BinOp("*", Sym("t"), Num(0.5))
        assert evaluate_param(expr, {"t": math.pi}) == pytest.approx(math.pi / 2)

    def test_division_by_zero_rejected(self):
        expr = BinOp("/", Num(1.0), Sym("z"))
        with pytest.raises(QasmSemanticError):
            expr.evaluate({"z": 0.0})

    def test_plain_float_passthrough(self):
        assert evaluate_param(0.25, {}) == 0.25


class TestExpansion:
    def test_simple_macro_expands(self):
        circuit = qasm_to_circuit(
            "gate bell a, b { h a; cx a, b; }\nqubit[2] q;\nbell q[0], q[1];"
        )
        assert [i.name for i in circuit.instructions] == ["h", "cx"]
        reference = QuantumCircuit(2).h(0).cx(0, 1)
        assert circuits_equivalent(circuit, reference)

    def test_parameter_substitution(self):
        circuit = qasm_to_circuit(
            "gate halfrot(t) a { rz(t/2) a; }\nqubit[1] q;\nhalfrot(pi) q[0];"
        )
        assert circuit.instructions[0].params[0] == pytest.approx(math.pi / 2)

    def test_nested_macros(self):
        source = (
            "gate flip a { x a; }\n"
            "gate doubleflip a { flip a; flip a; }\n"
            "qubit[1] q;\ndoubleflip q[0];"
        )
        circuit = qasm_to_circuit(source)
        assert circuit.count_ops() == {"x": 2}
        assert circuits_equivalent(circuit, QuantumCircuit(1))

    def test_qubit_permutation_respected(self):
        circuit = qasm_to_circuit(
            "gate rev a, b { cx b, a; }\nqubit[2] q;\nrev q[0], q[1];"
        )
        assert circuit.instructions[0].qubits == (1, 0)

    def test_wrong_arity_rejected(self):
        with pytest.raises(QasmSemanticError):
            qasm_to_circuit("gate g a, b { cx a, b; }\nqubit[2] q;\ng q[0];")

    def test_wrong_param_count_rejected(self):
        with pytest.raises(QasmSemanticError):
            qasm_to_circuit(
                "gate g(t) a { rz(t) a; }\nqubit[1] q;\ng(0.1, 0.2) q[0];"
            )

    def test_redefinition_rejected(self):
        with pytest.raises(QasmSemanticError):
            qasm_to_circuit("gate g a { x a; }\ngate g a { y a; }\nqubit[1] q;")

    def test_macro_with_weaver_style_fragment(self):
        """A user-defined clause fragment matches the library's compressed
        form — the extensibility story of §3.1 in action."""
        gamma = 0.8
        # Signs for the all-negative clause (s_a = s_b = s_t = -1): the
        # sandwich angle is -gamma*s_t/2 = +gamma/2, the residual RZs are
        # gamma*s/4 = -gamma/4, and the control-control term gets
        # gamma*s_a*s_b/4 = +gamma/4 (see repro.qaoa.cost).
        source = (
            "gate clause(g) a, b, t {\n"
            "  ccx a, b, t; rz(g/2) t; ccx a, b, t;\n"
            "  rz(-g/2) t; rz(-g/4) a; rz(-g/4) b;\n"
            "  cx a, b; rz(g/4) b; cx a, b;\n"
            "}\n"
            f"qubit[3] q;\nclause({gamma}) q[0], q[1], q[2];"
        )
        circuit = qasm_to_circuit(source)
        from repro.qaoa import compressed_clause_circuit
        from repro.sat.cnf import Clause

        reference = compressed_clause_circuit(Clause((-1, -2, -3)), 3, gamma)
        # All-negative literals need no X conjugation, so the macro matches.
        assert circuits_equivalent(circuit, reference)
