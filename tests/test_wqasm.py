"""Tests for the wQasm annotation codec and program container (§4)."""

import pytest

from repro.circuits import circuits_equivalent
from repro.exceptions import AnnotationError
from repro.fpqa import (
    AodInit,
    BindAtom,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    ShuttleMove,
    SlmInit,
    Transfer,
)
from repro.qasm.ast import Annotation
from repro.wqasm import (
    annotation_to_instruction,
    instruction_to_annotation,
    parse_wqasm,
)

ROUNDTRIP_INSTRUCTIONS = [
    SlmInit(((0.0, 0.0), (12.5, -3.25))),
    AodInit((1.0, 9.0), (0.5,)),
    BindAtom(qubit=4, slm_index=2),
    BindAtom(qubit=5, aod_col=1, aod_row=0),
    Transfer(slm_index=3, aod_col=2, aod_row=0),
    Shuttle(ShuttleMove("row", 0, -17.5)),
    Shuttle(ShuttleMove("column", 3, 2.25)),
    Shuttle(ShuttleMove("column", 1, 8.0, loaded=False)),
    ParallelShuttle(
        (ShuttleMove("row", 2, 4.5), ShuttleMove("column", 0, -1.0, loaded=False))
    ),
    RamanLocal(7, 0.1, -0.2, 0.3),
    RamanGlobal(1.5707963, 0.0, -3.14159),
    RydbergPulse(),
]


class TestAnnotationCodec:
    @pytest.mark.parametrize("instruction", ROUNDTRIP_INSTRUCTIONS, ids=lambda i: type(i).__name__)
    def test_roundtrip(self, instruction):
        annotations = instruction_to_annotation(instruction)
        assert len(annotations) == 1
        decoded = annotation_to_instruction(annotations[0])
        assert decoded == instruction

    def test_parallel_shuttle_serializes_as_one_grouped_line(self):
        """Grouping is schedule semantics: one annotation, moves ;-joined."""
        group = ParallelShuttle(
            (ShuttleMove("column", 0, 1.0), ShuttleMove("column", 1, 2.0))
        )
        annotations = instruction_to_annotation(group)
        assert len(annotations) == 1
        assert annotations[0].keyword == "shuttle"
        assert ";" in annotations[0].content
        assert annotation_to_instruction(annotations[0]) == group

    def test_sequential_shuttles_stay_sequential(self):
        """Two bare @shuttle lines must NOT merge into a parallel group."""
        lines = [
            Annotation("shuttle", "column 0 1.0"),
            Annotation("shuttle", "column 1 2.0"),
        ]
        decoded = [annotation_to_instruction(a) for a in lines]
        assert all(isinstance(i, Shuttle) for i in decoded)

    def test_qubit_identifier_forms(self):
        plain = annotation_to_instruction(Annotation("raman", "local 3 0.1 0.2 0.3"))
        prefixed = annotation_to_instruction(Annotation("raman", "local q3 0.1 0.2 0.3"))
        assert plain == prefixed

    @pytest.mark.parametrize(
        "keyword,content",
        [
            ("slm", "not-a-list"),
            ("slm", "[(1.0,)]"),
            ("aod", "[1.0]"),
            ("bind", "q1 nowhere 3"),
            ("transfer", "1 2 3"),
            ("shuttle", "sideways 0 1.0"),
            ("raman", "nowhere 1 2 3"),
            ("rydberg", "unexpected"),
            ("mystery", ""),
        ],
    )
    def test_malformed_payloads_rejected(self, keyword, content):
        with pytest.raises(AnnotationError):
            annotation_to_instruction(Annotation(keyword, content))


class TestProgramSerialization:
    def test_full_roundtrip(self, compiled_paper_example):
        program = compiled_paper_example.program
        text = program.to_wqasm()
        again = parse_wqasm(text)
        assert again.num_qubits == program.num_qubits
        assert again.measured == program.measured
        assert circuits_equivalent(
            again.logical_circuit(), program.logical_circuit()
        )

    def test_pulse_counts_preserved(self, compiled_paper_example):
        program = compiled_paper_example.program
        again = parse_wqasm(program.to_wqasm())
        assert again.pulse_counts() == program.pulse_counts()

    def test_schedule_semantics_preserved(self, compiled_uf20):
        """Grouping and loaded flags round-trip: derived duration and EPS
        are exactly the recorded ones, so re-analyzing a deserialized
        artifact cannot raise WL051/WL052 cost-bound findings."""
        from repro.metrics import program_duration_us, program_eps

        program = compiled_uf20.program
        again = parse_wqasm(program.to_wqasm())
        assert program_duration_us(again) == program_duration_us(program)
        assert program_eps(again) == program_eps(program)

    def test_setup_preserved(self, compiled_paper_example):
        program = compiled_paper_example.program
        again = parse_wqasm(program.to_wqasm())
        kinds = [type(i).__name__ for i in again.setup]
        assert kinds[0] == "SlmInit"
        assert kinds[1] == "AodInit"
        assert kinds.count("BindAtom") == program.num_qubits

    def test_measured_program_roundtrip(self, compiled_uf20):
        program = compiled_uf20.program
        text = program.to_wqasm()
        again = parse_wqasm(text)
        assert again.measured
        assert again.pulse_counts() == program.pulse_counts()

    def test_wqasm_text_is_openqasm_superset(self, compiled_paper_example):
        """Stripping annotations must leave loadable plain OpenQASM (§4.2)."""
        from repro.qasm import qasm_to_circuit

        text = compiled_paper_example.program.to_wqasm()
        stripped = "\n".join(
            line for line in text.splitlines() if not line.startswith("@")
        )
        circuit = qasm_to_circuit(stripped)
        assert circuits_equivalent(
            circuit, compiled_paper_example.program.logical_circuit()
        )

    def test_logical_circuit_structure(self, compiled_paper_example):
        program = compiled_paper_example.program
        ops = program.logical_circuit().count_ops()
        assert "ccz" in ops and "cz" in ops and "u3" in ops
