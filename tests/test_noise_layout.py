"""Tests for per-coupler calibration and the noise-adaptive layout."""

import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import RoutingError
from repro.qaoa import qaoa_circuit
from repro.sat import satlib_instance
from repro.superconducting import SuperconductingTranspiler
from repro.superconducting.backend import (
    calibrated_washington_backend,
    washington_backend,
)
from repro.superconducting.noise_layout import noise_aware_layout


class TestCalibration:
    def test_calibrated_backend_has_edge_scatter(self):
        backend = calibrated_washington_backend(seed=1)
        errors = list(backend.edge_errors.values())
        assert len(errors) == len(backend.coupling.edges)
        assert max(errors) > 2 * min(errors)  # genuine scatter

    def test_calibration_deterministic(self):
        a = calibrated_washington_backend(seed=5)
        b = calibrated_washington_backend(seed=5)
        assert a.edge_errors == b.edge_errors

    def test_edge_error_fallback(self):
        backend = washington_backend()
        a, b = backend.coupling.edges[0]
        assert backend.edge_error(a, b) == backend.error_2q

    def test_non_edge_calibration_rejected(self):
        from repro.exceptions import CompilationError

        backend = washington_backend()
        with pytest.raises(CompilationError):
            backend.with_overrides(edge_errors={(0, 125): 0.01})


class TestNoiseAwareLayout:
    def test_layout_is_injective_and_connected_region(self):
        backend = calibrated_washington_backend(seed=2)
        circuit = qaoa_circuit(satlib_instance("uf20-01"))
        layout = noise_aware_layout(circuit, backend)
        assert len(set(layout)) == circuit.num_qubits
        # The chosen sites must form a connected region.
        sites = set(layout)
        frontier = {layout[0]}
        seen = {layout[0]}
        while frontier:
            nxt = set()
            for site in frontier:
                for neighbor in backend.coupling.neighbors(site):
                    if neighbor in sites and neighbor not in seen:
                        seen.add(neighbor)
                        nxt.add(neighbor)
            frontier = nxt
        assert seen == sites

    def test_too_many_qubits_rejected(self):
        backend = washington_backend()
        with pytest.raises(RoutingError):
            noise_aware_layout(QuantumCircuit(500), backend)

    def test_avoids_bad_couplers(self):
        """The selected region's couplers must beat the device average."""
        backend = calibrated_washington_backend(seed=3)
        circuit = qaoa_circuit(satlib_instance("uf20-01"))
        layout = set(noise_aware_layout(circuit, backend))
        region_errors = [
            err
            for (a, b), err in backend.edge_errors.items()
            if a in layout and b in layout
        ]
        device_mean = sum(backend.edge_errors.values()) / len(backend.edge_errors)
        assert sum(region_errors) / len(region_errors) < device_mean

    def test_noise_layout_tradeoff_documented(self):
        """Noise-aware placement trades routing freedom for couplers.

        Measured finding (module docstring): on heavy-hex at QAOA scale
        the stringy low-noise regions cost extra SWAPs.  The test pins the
        trade-off down: the noise layout gets strictly better couplers
        (asserted in test_avoids_bad_couplers) at the price of more SWAPs.
        """
        backend = calibrated_washington_backend(seed=4)
        circuit = qaoa_circuit(satlib_instance("uf20-01"), measure=True)
        greedy = SuperconductingTranspiler(backend, layout_method="greedy").transpile(
            circuit
        )
        noise = SuperconductingTranspiler(backend, layout_method="noise").transpile(
            circuit
        )
        assert noise.num_swaps >= greedy.num_swaps
        # Both must still produce valid, finite estimates.
        import math

        assert math.isfinite(math.log(noise.eps))
        assert math.isfinite(math.log(greedy.eps))

    def test_unknown_layout_method_rejected(self):
        with pytest.raises(RoutingError):
            SuperconductingTranspiler(layout_method="psychic")
