"""Property and statistical tests for the execution simulator.

* Noiseless simulation of a *compiled* program reproduces the exact
  amplitudes of its ``circuits.unitary``-derived unitary, for every
  simulatable target x compatible-device combination.
* Noisy sampled EPS decreases monotonically as the noise scale grows
  (statistical flavor: independent seeds per scale).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.circuits import circuit_statevector, circuit_unitary
from repro.linalg import allclose_up_to_global_phase
from repro.sim import StatevectorEngine, schedule_for_result

#: Every simulatable target, each with a compatible device axis
#: (``None`` = the target's default hardware).
TARGET_DEVICE_GRID = (
    ("fpqa", None),
    ("fpqa", "rubidium-baseline"),
    ("fpqa", "aquila-256"),
    ("fpqa-nocompress", None),
    ("superconducting", None),
    ("superconducting", "heavyhex-23"),
)

SETTINGS = settings(max_examples=8, deadline=None, derandomize=True)


def _small_formula(num_vars: int, num_clauses: int, seed: int):
    return repro.random_ksat(
        num_vars,
        num_clauses,
        k=min(3, num_vars),
        seed=seed,
        name=f"prop-{num_vars}-{num_clauses}-{seed}",
    )


@pytest.mark.parametrize("target,device", TARGET_DEVICE_GRID)
@SETTINGS
@given(
    num_vars=st.integers(min_value=3, max_value=5),
    num_clauses=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_noiseless_simulation_matches_exact_amplitudes(
    target, device, num_vars, num_clauses, seed
):
    formula = _small_formula(num_vars, num_clauses, seed)
    result = repro.compile(formula, target=target, device=device, measure=False)
    schedule = schedule_for_result(result)
    simulated = StatevectorEngine(schedule.num_qubits).run(schedule.instructions)

    # 1. The engine agrees with the dense-unitary oracle on the same
    #    (compiled, reconstructed) circuit.
    exact = circuit_unitary(result.as_circuit())[:, 0]
    assert allclose_up_to_global_phase(simulated, exact, atol=1e-7)

    # 2. And the compiled artifact still implements the logical QAOA
    #    circuit (end-to-end compiler + simulator correctness).
    reference = circuit_statevector(
        repro.qaoa_circuit(formula).without_measurements()
    )
    assert allclose_up_to_global_phase(simulated, reference, atol=1e-6)


@SETTINGS
@given(
    num_vars=st.integers(min_value=3, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_noiseless_counts_only_hit_nonzero_amplitudes(num_vars, seed):
    formula = _small_formula(num_vars, num_vars + 1, seed)
    result = repro.compile(formula, target="fpqa")
    execution = result.simulate(shots=256, noise=None, seed=seed)
    exact = repro.measurement_distribution(result.as_circuit())
    for bits in execution.counts:
        assert exact.get(bits, 0.0) > 0.0


def test_sampled_eps_monotone_statistical():
    """Independent seeds per scale: the statistical monotonicity check.

    Scales are spaced so the EPS gaps dwarf binomial noise at this shot
    count (adjacent analytic values differ by >> 3 sigma).
    """
    formula = _small_formula(5, 8, seed=123)
    result = repro.compile(formula, target="fpqa", device="rubidium-baseline")
    scales = (0.5, 4.0, 16.0, 64.0)
    sampled = []
    analytic = []
    for index, scale in enumerate(scales):
        execution = result.simulate(
            shots=1500, noise=scale, seed=1000 + index, max_trajectories=0
        )
        sampled.append(execution.eps_sampled)
        analytic.append(execution.eps_analytic)
    assert analytic == sorted(analytic, reverse=True)
    assert sampled == sorted(sampled, reverse=True), (sampled, analytic)
    for got, expected in zip(sampled, analytic):
        sigma = max(np.sqrt(expected * (1 - expected) / 1500), 1e-6)
        assert abs(got - expected) < 6 * sigma


def test_unsimulatable_targets_raise_clearly():
    formula = _small_formula(4, 4, seed=5)
    result = repro.compile(formula, target="atomique")
    with pytest.raises(repro.SimulationError, match="no executable artifact"):
        result.simulate(shots=10)
