"""Unit tests for the gate library."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import (
    GATE_ALIASES,
    STANDARD_GATE_NAMES,
    Gate,
    controlled_z_matrix,
    gate_matrix,
    make_gate,
    u3_from_matrix,
)
from repro.exceptions import CircuitError
from repro.linalg import allclose_up_to_global_phase, is_unitary

_PARAM_COUNT = {"rx": 1, "ry": 1, "rz": 1, "p": 1, "rzz": 1, "cp": 1, "u3": 3, "raman": 3}


class TestMatrices:
    @pytest.mark.parametrize("name", STANDARD_GATE_NAMES)
    def test_every_gate_matrix_is_unitary(self, name):
        params = tuple([0.37] * _PARAM_COUNT.get(name, 0))
        assert is_unitary(gate_matrix(name, params))

    def test_x_matrix(self):
        assert np.allclose(gate_matrix("x"), [[0, 1], [1, 0]])

    def test_h_squared_is_identity(self):
        h = gate_matrix("h")
        assert np.allclose(h @ h, np.eye(2))

    def test_s_is_sqrt_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"))

    def test_t_is_sqrt_s(self):
        t = gate_matrix("t")
        assert np.allclose(t @ t, gate_matrix("s"))

    def test_sx_is_sqrt_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"))

    def test_rz_diagonal(self):
        rz = gate_matrix("rz", (0.5,))
        assert rz[0, 1] == 0 and rz[1, 0] == 0

    def test_rzz_is_diagonal(self):
        m = gate_matrix("rzz", (0.9,))
        assert np.allclose(m, np.diag(np.diag(m)))

    def test_cx_permutation(self):
        cx = gate_matrix("cx")
        assert np.allclose(cx @ cx, np.eye(4))

    def test_ccz_phase_only_on_all_ones(self):
        m = gate_matrix("ccz")
        diag = np.diag(m)
        assert diag[-1] == -1
        assert np.allclose(diag[:-1], 1.0)

    def test_controlled_z_arbitrary_arity(self):
        m = controlled_z_matrix(4)
        assert m.shape == (16, 16)
        assert m[15, 15] == -1

    def test_controlled_z_rejects_zero_qubits(self):
        with pytest.raises(CircuitError):
            controlled_z_matrix(0)

    def test_raman_composition_order(self):
        x, y, z = 0.3, 0.5, 0.7
        expected = (
            gate_matrix("rz", (z,)) @ gate_matrix("ry", (y,)) @ gate_matrix("rx", (x,))
        )
        assert np.allclose(gate_matrix("raman", (x, y, z)), expected)


class TestInverses:
    @pytest.mark.parametrize("name", STANDARD_GATE_NAMES)
    def test_inverse_composes_to_identity(self, name):
        params = tuple([0.71] * _PARAM_COUNT.get(name, 0))
        gate = make_gate(name, params)
        product = gate.inverse().matrix() @ gate.matrix()
        assert allclose_up_to_global_phase(product, np.eye(2**gate.num_qubits))

    def test_mcz_self_inverse(self):
        gate = make_gate("mcz", num_qubits=4)
        assert gate.inverse() is gate

    def test_s_inverse_is_sdg(self):
        assert make_gate("s").inverse().name == "sdg"


class TestConstruction:
    def test_alias_resolution(self):
        assert make_gate("cnot").name == "cx"
        assert make_gate("u", (0.1, 0.2, 0.3)).name == "u3"
        for alias, canonical in GATE_ALIASES.items():
            assert make_gate(alias, tuple([0.1] * _PARAM_COUNT.get(canonical, 0))).name == canonical

    def test_unknown_gate_rejected(self):
        with pytest.raises(CircuitError):
            make_gate("warp")

    def test_wrong_arity_rejected(self):
        with pytest.raises(CircuitError):
            Gate("cx", 3)

    def test_wrong_param_count_rejected(self):
        with pytest.raises(CircuitError):
            Gate("rz", 1, (0.1, 0.2))

    def test_mcz_requires_explicit_arity(self):
        with pytest.raises(CircuitError):
            make_gate("mcz")

    def test_mcz_rejects_zero_qubits(self):
        with pytest.raises(CircuitError):
            Gate("mcz", 0)

    def test_measure_is_not_unitary(self):
        assert not Gate("measure", 1).is_unitary

    def test_gates_are_hashable(self):
        assert len({make_gate("x"), make_gate("x"), make_gate("y")}) == 2


class TestU3Recovery:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("h", ()),
            ("x", ()),
            ("y", ()),
            ("z", ()),
            ("s", ()),
            ("sdg", ()),
            ("t", ()),
            ("sx", ()),
            ("id", ()),
            ("rx", (1.2,)),
            ("ry", (-0.4,)),
            ("rz", (2.8,)),
            ("p", (0.9,)),
            ("raman", (0.2, -0.8, 1.4)),
        ],
    )
    def test_u3_from_named_gate(self, name, params):
        matrix = gate_matrix(name, params)
        recovered = u3_from_matrix(matrix)
        assert allclose_up_to_global_phase(matrix, recovered.matrix())

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(-math.pi, math.pi),
        st.floats(-math.pi, math.pi),
        st.floats(-math.pi, math.pi),
    )
    def test_u3_roundtrip_random(self, theta, phi, lam):
        matrix = gate_matrix("u3", (theta, phi, lam))
        recovered = u3_from_matrix(matrix)
        assert allclose_up_to_global_phase(matrix, recovered.matrix(), atol=1e-7)
