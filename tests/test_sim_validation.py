"""Acceptance: sampled EPS agrees with the analytic model on uf20.

The full-corpus sweep is the evaluation hook of the ISSUE acceptance
criteria: for every fixed-size uf20 instance, the Monte-Carlo EPS
estimate of a 2000-shot simulated execution must bracket
``metrics.fidelity.program_eps`` within the confidence bound.
"""

from __future__ import annotations

import pytest

from repro.evaluation import FIXED_SIZE_INSTANCES, eps_cross_validation

pytestmark = pytest.mark.slow


def test_uf20_corpus_sampled_eps_within_ci():
    rows = eps_cross_validation(shots=2000, seed=7)
    assert len(rows) == len(FIXED_SIZE_INSTANCES)
    for row in rows:
        # The event product and the metric are the same model computed
        # two ways; they must agree to float precision.
        assert row["model_eps"] == pytest.approx(row["analytic_eps"], rel=1e-9)
        assert row["within_ci"], row
        # And the estimate itself is close in absolute terms.
        assert abs(row["sampled_eps"] - row["analytic_eps"]) < 0.05


def test_noise_scale_shifts_the_analytic_target():
    rows = eps_cross_validation(
        instances=FIXED_SIZE_INSTANCES[:2], shots=1200, seed=3, noise=2.0
    )
    for row in rows:
        assert row["analytic_eps"] == pytest.approx(
            row["model_eps"], rel=1e-9
        )
        assert row["within_ci"], row
