"""Tests for the wOptimizer passes (paper §5)."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, circuit_unitary
from repro.exceptions import CompilationError
from repro.fpqa import FPQAHardwareParams, zone_layout
from repro.linalg import allclose_up_to_global_phase
from repro.passes import (
    ClauseColoringPass,
    CompilationContext,
    GateCompressionPass,
    PassManager,
    compression_beneficial,
    plan_waves,
)
from repro.passes.color_shuttling import (
    ColorShuttlingPass,
    reorder_groups_for_shuttling,
    zone_destinations,
)
from repro.passes.gate_compression import (
    compressed_raman_matrices,
    fragment_fidelity_compressed,
    fragment_fidelity_ladder,
    pair_raman_matrices,
    unit_raman_matrix,
)
from repro.passes.woptimizer import ZoneLayoutPass
from repro.qaoa import QaoaParameters
from repro.qaoa.cost import cost_unitary_diagonal
from repro.sat import CnfFormula, clause_polynomial
from repro.sat.cnf import Clause


def make_context(formula, **kwargs):
    hardware = FPQAHardwareParams()
    return CompilationContext(
        formula=formula,
        parameters=QaoaParameters(),
        hardware=hardware,
        geometry=zone_layout(hardware),
        **kwargs,
    )


class TestClauseColoringPass:
    def test_paper_example_grouping(self, paper_formula):
        context = make_context(paper_formula)
        ClauseColoringPass().run(context)
        coloring = context.properties["coloring"]
        assert coloring.num_colors == 2
        assert sorted(len(g) for g in coloring.groups) == [1, 2]

    def test_placements_cover_all_clauses(self, mixed_formula):
        context = make_context(mixed_formula)
        ClauseColoringPass().run(context)
        coloring = context.properties["coloring"]
        assert len(coloring.placements) == len(mixed_formula.clauses)

    def test_signs_track_variables(self, paper_formula):
        context = make_context(paper_formula)
        ClauseColoringPass().run(context)
        coloring = context.properties["coloring"]
        for placement in coloring.placements:
            clause = paper_formula.clauses[placement.clause_index]
            for qubit, sign in zip(placement.qubits, placement.signs):
                literal = [l for l in clause.literals if abs(l) - 1 == qubit][0]
                assert (literal > 0) == (sign > 0)

    def test_same_color_clauses_disjoint(self, uf20):
        context = make_context(uf20)
        ClauseColoringPass().run(context)
        coloring = context.properties["coloring"]
        for group in coloring.groups:
            seen: set[int] = set()
            for clause_index in group:
                variables = set(coloring.placements[clause_index].qubits)
                assert not (seen & variables)
                seen |= variables

    def test_non_3sat_rejected(self):
        formula = CnfFormula.from_lists([[1, 2, 3, 4]], num_vars=4)
        with pytest.raises(CompilationError):
            ClauseColoringPass().run(make_context(formula))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(CompilationError):
            ClauseColoringPass("rainbow")

    def test_greedy_algorithm_also_valid(self, uf20):
        context = make_context(uf20)
        ClauseColoringPass("greedy").run(context)
        assert context.properties["coloring"].num_colors >= 1


class TestPlanWaves:
    def test_order_preserving_single_wave(self):
        sources = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (20.0, 0.0)}
        dests = {0: (100.0, 50.0), 1: (110.0, 50.0), 2: (120.0, 50.0)}
        waves = plan_waves(sources, dests)
        assert len(waves) == 1
        assert waves[0].atoms == (0, 1, 2)

    def test_reversed_order_needs_n_waves(self):
        sources = {0: (20.0, 0.0), 1: (10.0, 0.0), 2: (0.0, 0.0)}
        dests = {0: (100.0, 50.0), 1: (110.0, 50.0), 2: (120.0, 50.0)}
        waves = plan_waves(sources, dests)
        assert len(waves) == 3

    def test_paper_example_two_step_shuttle(self):
        """§5.3: order x2 > x4 > x5 becoming x4 > x2 > x5 takes two waves."""
        sources = {"x2": (0.0, 0.0), "x4": (10.0, 0.0), "x5": (20.0, 0.0)}
        dests = {"x4": (100.0, 1.0), "x2": (110.0, 1.0), "x5": (120.0, 1.0)}
        waves = plan_waves(sources, dests)
        assert len(waves) == 2
        assert set(waves[0].atoms) == {"x4", "x5"}
        assert waves[1].atoms == ("x2",)

    def test_min_gap_splits_waves(self):
        sources = {0: (0.0, 0.0), 1: (2.0, 0.0)}
        dests = {0: (50.0, 9.0), 1: (60.0, 9.0)}
        assert len(plan_waves(sources, dests, min_gap_um=5.0)) == 2

    def test_waves_partition_the_move_set(self):
        rng = np.random.default_rng(5)
        atoms = list(range(12))
        xs = rng.permutation(12) * 10.0
        sources = {a: (float(xs[a]), 0.0) for a in atoms}
        dests = {a: (a * 10.0, 30.0) for a in atoms}
        waves = plan_waves(sources, dests, min_gap_um=5.0)
        moved = [atom for wave in waves for atom in wave.atoms]
        assert sorted(moved) == atoms
        for wave in waves:
            src_xs = [s[0] for s in wave.sources]
            assert src_xs == sorted(src_xs)

    def test_mismatched_sets_rejected(self):
        with pytest.raises(CompilationError):
            plan_waves({0: (0.0, 0.0)}, {1: (1.0, 1.0)})

    def test_duplicate_destination_x_rejected(self):
        with pytest.raises(CompilationError):
            plan_waves(
                {0: (0.0, 0.0), 1: (10.0, 0.0)},
                {0: (5.0, 1.0), 1: (5.0, 2.0)},
            )


class TestShuttlingPass:
    def _coloring(self, formula):
        context = make_context(formula)
        ClauseColoringPass().run(context)
        ZoneLayoutPass().run(context)
        return context

    def test_plan_produced_for_every_color(self, paper_formula):
        context = self._coloring(paper_formula)
        ColorShuttlingPass().run(context)
        plans = context.properties["shuttle_plan"]
        coloring = context.properties["coloring"]
        assert len(plans) == coloring.num_colors

    def test_final_parked_covers_used_atoms(self, paper_formula):
        context = self._coloring(paper_formula)
        ColorShuttlingPass().run(context)
        parked = context.properties["final_parked"]
        assert set(parked) == set(range(paper_formula.num_vars))

    def test_reorder_sets_roles_by_x(self, paper_formula):
        context = self._coloring(paper_formula)
        coloring = context.properties["coloring"]
        geometry = context.geometry
        home = {
            v: geometry.home_position(v, paper_formula.num_vars)
            for v in range(paper_formula.num_vars)
        }
        reorder_groups_for_shuttling(coloring, geometry, home)
        parked = dict(home)
        for color in range(coloring.num_colors):
            for placement in coloring.group_placements(color):
                if placement.arity == 3:
                    a, b, t = placement.qubits
                    assert parked[a][0] < parked[t][0] < parked[b][0]
            parked.update(zone_destinations(coloring, geometry, color))

    def test_unit_clauses_not_moved(self):
        formula = CnfFormula.from_lists([[3]], num_vars=3)
        context = self._coloring(formula)
        ColorShuttlingPass().run(context)
        plans = context.properties["shuttle_plan"]
        assert all(not plan.waves for plan in plans)


class TestGateCompressionPass:
    def test_default_hardware_prefers_compression(self):
        assert compression_beneficial(FPQAHardwareParams())

    def test_poor_ccz_disables_compression(self):
        hardware = FPQAHardwareParams().with_overrides(fidelity_ccz=0.90)
        assert not compression_beneficial(hardware)

    def test_override_respected(self, paper_formula):
        context = make_context(paper_formula, compression_override=False)
        GateCompressionPass().run(context)
        assert not context.properties["fragments"].use_compression

    def test_fidelity_estimates_ordering(self):
        hardware = FPQAHardwareParams()
        assert 0 < fragment_fidelity_ladder(hardware) < 1
        assert 0 < fragment_fidelity_compressed(hardware) < 1


class TestFragmentAlgebra:
    """The Raman matrices must compose to exp(-i*gamma*P_C) exactly."""

    @pytest.mark.parametrize(
        "literals", [(-1, -2, -3), (1, 2, 3), (1, -2, 3), (-1, 2, -3)]
    )
    def test_compressed_matrices_compose_to_fragment(self, literals):
        from repro.passes.clause_coloring import ClausePlacement

        gamma = 0.77
        clause = Clause(literals)
        qubits = tuple(abs(l) - 1 for l in sorted(literals, key=abs))
        signs = tuple(1.0 if l > 0 else -1.0 for l in sorted(literals, key=abs))
        placement = ClausePlacement(0, 0, 0, qubits, signs)
        mats = compressed_raman_matrices(placement, gamma)
        qa, qb, qt = placement.qubits
        circuit = QuantumCircuit(3)

        def raman(key, qubit):
            if mats[key] is not None:
                from repro.circuits.gates import u3_from_matrix

                circuit.append(u3_from_matrix(mats[key]), (qubit,))

        raman("ctrl_pre_a", qa)
        raman("ctrl_pre_b", qb)
        raman("target_pre", qt)
        circuit.ccz(qa, qb, qt)
        raman("target_mid", qt)
        circuit.ccz(qa, qb, qt)
        raman("target_post", qt)
        raman("ctrl_post_a", qa)
        raman("ctrl_post_b", qb)
        raman("b_pre", qb)
        circuit.cz(qa, qb)
        raman("b_mid", qb)
        circuit.cz(qa, qb)
        raman("b_post", qb)
        exact = cost_unitary_diagonal(clause_polynomial(clause, 3), gamma)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), np.diag(exact))

    @pytest.mark.parametrize("literals", [(1, -2), (-1, -2), (1, 2)])
    def test_pair_matrices_compose_to_fragment(self, literals):
        from repro.circuits.gates import u3_from_matrix
        from repro.passes.clause_coloring import ClausePlacement

        gamma = 0.41
        clause = Clause(literals)
        qubits = tuple(abs(l) - 1 for l in sorted(literals, key=abs))
        signs = tuple(1.0 if l > 0 else -1.0 for l in sorted(literals, key=abs))
        placement = ClausePlacement(0, 0, 0, qubits, signs)
        mats = pair_raman_matrices(placement, gamma)
        qa, qb = placement.qubits
        circuit = QuantumCircuit(2)
        circuit.append(u3_from_matrix(mats["b_pre"]), (qb,))
        circuit.cz(qa, qb)
        circuit.append(u3_from_matrix(mats["b_mid"]), (qb,))
        circuit.cz(qa, qb)
        circuit.append(u3_from_matrix(mats["b_post"]), (qb,))
        circuit.append(u3_from_matrix(mats["a_post"]), (qa,))
        exact = cost_unitary_diagonal(clause_polynomial(clause, 2), gamma)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), np.diag(exact))

    @pytest.mark.parametrize("literal", [1, -1])
    def test_unit_matrix(self, literal):
        from repro.passes.clause_coloring import ClausePlacement

        gamma = 0.9
        clause = Clause((literal,))
        placement = ClausePlacement(0, 0, 0, (0,), (1.0 if literal > 0 else -1.0,))
        matrix = unit_raman_matrix(placement, gamma)
        exact = cost_unitary_diagonal(clause_polynomial(clause, 1), gamma)
        assert allclose_up_to_global_phase(matrix, np.diag(exact))


class TestPassManager:
    def test_requires_at_least_one_pass(self):
        with pytest.raises(CompilationError):
            PassManager([])

    def test_records_timing_stats(self, paper_formula):
        context = make_context(paper_formula)
        PassManager([ClauseColoringPass()]).run(context)
        assert "seconds" in context.stats["clause-coloring"]

    def test_missing_property_reported(self, paper_formula):
        context = make_context(paper_formula)
        with pytest.raises(CompilationError):
            context.require("coloring")
