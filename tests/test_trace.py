"""Tests for the execution-trace tooling."""

import json

import pytest

from repro.fpqa.trace import render_frame, trace_program


@pytest.fixture(scope="module")
def trace(compiled_paper_example):
    return trace_program(compiled_paper_example.program)


class TestTrace:
    def test_event_per_instruction(self, trace, compiled_paper_example):
        assert len(trace.events) == len(
            compiled_paper_example.program.fpqa_instructions()
        )

    def test_clock_is_monotone(self, trace):
        times = [e.time_us for e in trace.events]
        assert times == sorted(times)

    def test_total_duration_positive(self, trace):
        assert trace.total_duration_us > 0

    def test_rydberg_events_name_clusters(self, trace):
        rydbergs = [e for e in trace.events if e.kind == "rydberg"]
        assert rydbergs
        assert all("clusters" in e.detail for e in rydbergs)

    def test_atom_path_continuous(self, trace):
        path = trace.atom_path(0)
        assert len(path) > 1
        assert path[0][0] == 0.0 or path[0][0] >= 0.0

    def test_moved_atoms_travel(self, trace, compiled_paper_example):
        # Variables used in clauses must have moved; total travel positive.
        used = compiled_paper_example.context.formula.variables_used()
        moved = [trace.total_travel_um(v - 1) for v in used]
        assert any(t > 0 for t in moved)

    def test_json_export_parses(self, trace):
        payload = json.loads(trace.to_json())
        assert payload[0]["kind"] == "setup"
        assert "positions" in payload[-1]

    def test_render_frame(self, trace):
        frame = render_frame(trace.events[-1])
        assert "t=" in frame
        lines = frame.splitlines()
        assert len(lines) == 21  # header + 20 rows
        body = "\n".join(lines[1:])
        assert any(ch.isdigit() or ch == "*" for ch in body)

    def test_empty_positions_rejected(self, trace):
        from dataclasses import replace

        from repro.exceptions import VerificationError

        bare = replace(trace.events[0], positions={})
        with pytest.raises(VerificationError):
            render_frame(bare)
