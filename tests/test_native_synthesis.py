"""Tests for native gate synthesis ({U3, CZ} basis, paper §7)."""

import pytest

from repro.circuits import QuantumCircuit, circuits_equivalent
from repro.passes import nativize_circuit


NATIVE_NAMES = {"u3", "cz", "barrier", "measure"}


class TestNativize:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda qc: qc.h(0),
            lambda qc: qc.x(0).y(1).z(2),
            lambda qc: qc.cx(0, 1),
            lambda qc: qc.swap(1, 2),
            lambda qc: qc.ccx(0, 1, 2),
            lambda qc: qc.ccz(0, 1, 2),
            lambda qc: qc.rzz(0.77, 0, 2),
            lambda qc: qc.cp(1.3, 1, 2),
            lambda qc: qc.raman(0.1, 0.2, 0.3, 0),
        ],
        ids=[
            "h", "paulis", "cx", "swap", "ccx", "ccz", "rzz", "cp", "raman",
        ],
    )
    def test_gate_zoo_equivalence(self, builder):
        qc = QuantumCircuit(3)
        builder(qc)
        native = nativize_circuit(qc)
        assert {i.name for i in native.instructions} <= NATIVE_NAMES
        assert circuits_equivalent(qc, native)

    def test_composite_circuit_equivalence(self):
        qc = QuantumCircuit(4)
        qc.h(0).cx(0, 1).rz(0.3, 2).ccx(0, 1, 2).swap(2, 3)
        qc.ccz(1, 2, 3).rzz(0.7, 0, 3).cp(1.1, 1, 3).t(0).sdg(2)
        native = nativize_circuit(qc)
        assert circuits_equivalent(qc, native)

    def test_measurements_preserved(self):
        qc = QuantumCircuit(1, 1).h(0).measure(0, 0)
        native = nativize_circuit(qc)
        assert native.count_ops()["measure"] == 1

    def test_fusion_reduces_gate_count(self):
        qc = QuantumCircuit(1)
        for _ in range(6):
            qc.t(0)
        fused = nativize_circuit(qc, fuse=True)
        unfused = nativize_circuit(qc, fuse=False)
        assert len(fused) < len(unfused)

    def test_ccz_decomposition_is_six_cz(self):
        qc = QuantumCircuit(3).ccz(0, 1, 2)
        native = nativize_circuit(qc)
        assert native.count_ops()["cz"] == 6
