"""Unit tests for the dependency DAG and the simulators."""

import numpy as np
import pytest

from repro.circuits import (
    CircuitDag,
    QuantumCircuit,
    circuit_statevector,
    circuit_unitary,
    circuits_equivalent,
    dependency_layers,
    measurement_distribution,
)
from repro.circuits.dag import critical_path_length, parallel_2q_layers
from repro.exceptions import SimulationError


class TestDag:
    def test_independent_gates_share_layer(self):
        qc = QuantumCircuit(4).h(0).h(1).h(2).h(3)
        layers = dependency_layers(qc)
        assert len(layers) == 1 and len(layers[0]) == 4

    def test_dependent_gates_stack(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        assert len(dependency_layers(qc)) == 3

    def test_front_layer(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        dag = CircuitDag(qc)
        assert dag.front_layer() == [0]

    def test_successors_follow_qubit_sharing(self):
        qc = QuantumCircuit(3).h(0).h(1).cx(0, 1)
        dag = CircuitDag(qc)
        assert dag.successors[0] == [2]
        assert dag.successors[1] == [2]

    def test_classical_bits_create_dependencies(self):
        qc = QuantumCircuit(2, 1)
        qc.measure(0, 0)
        qc.measure(1, 0)  # same clbit: must serialize
        assert len(dependency_layers(qc)) == 2

    def test_barrier_synchronizes_layers(self):
        qc = QuantumCircuit(2).h(0).barrier().h(1)
        layers = dependency_layers(qc)
        assert len(layers) == 2

    def test_parallel_2q_layers_ignores_1q(self):
        qc = QuantumCircuit(4).h(0).cz(0, 1).h(2).cz(2, 3)
        layers = parallel_2q_layers(qc)
        assert len(layers) == 1 and len(layers[0]) == 2

    def test_critical_path_with_durations(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        length = critical_path_length(qc, {"h": 1.0, "cx": 10.0})
        assert length == pytest.approx(12.0)

    def test_critical_path_default_unit(self):
        qc = QuantumCircuit(1).h(0).h(0).h(0)
        assert critical_path_length(qc) == pytest.approx(3.0)


class TestUnitarySim:
    def test_bell_state(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        state = circuit_statevector(qc)
        assert state[0] == pytest.approx(1 / np.sqrt(2))
        assert state[3] == pytest.approx(1 / np.sqrt(2))

    def test_ghz_distribution(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        dist = measurement_distribution(qc)
        assert dist == pytest.approx({"000": 0.5, "111": 0.5})

    def test_unitary_of_x(self):
        qc = QuantumCircuit(1).x(0)
        assert np.allclose(circuit_unitary(qc), [[0, 1], [1, 0]])

    def test_unitary_refuses_measurement(self):
        qc = QuantumCircuit(1, 1).measure(0, 0)
        with pytest.raises(SimulationError):
            circuit_unitary(qc)

    def test_unitary_size_limit(self):
        with pytest.raises(SimulationError):
            circuit_unitary(QuantumCircuit(16))

    def test_statevector_skips_measurement(self):
        qc = QuantumCircuit(1, 1).h(0).measure(0, 0)
        state = circuit_statevector(qc)
        assert abs(state[0]) == pytest.approx(1 / np.sqrt(2))

    def test_statevector_custom_initial_state(self):
        initial = np.array([0, 1], dtype=complex)
        qc = QuantumCircuit(1).x(0)
        out = circuit_statevector(qc, initial)
        assert out[0] == pytest.approx(1.0)

    def test_initial_state_shape_checked(self):
        with pytest.raises(SimulationError):
            circuit_statevector(QuantumCircuit(2), np.zeros(3, dtype=complex))

    def test_barrier_is_noop_in_simulation(self):
        a = QuantumCircuit(2).h(0).barrier().cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1)
        assert circuits_equivalent(a, b)


class TestEquivalence:
    def test_identical_circuits(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        assert circuits_equivalent(a, a.copy())

    def test_global_phase_ignored(self):
        a = QuantumCircuit(1).z(0)
        b = QuantumCircuit(1).rz(np.pi, 0)  # differs by global phase i
        assert circuits_equivalent(a, b)

    def test_different_circuits_rejected(self):
        a = QuantumCircuit(1).x(0)
        b = QuantumCircuit(1).y(0)
        assert not circuits_equivalent(a, b)

    def test_qubit_count_mismatch(self):
        assert not circuits_equivalent(QuantumCircuit(1), QuantumCircuit(2))

    def test_known_identity_swap(self):
        a = QuantumCircuit(2).swap(0, 1)
        b = QuantumCircuit(2).cx(0, 1).cx(1, 0).cx(0, 1)
        assert circuits_equivalent(a, b)

    def test_probe_path_on_large_register(self):
        # 14 qubits exceeds the dense-unitary limit; probing kicks in.
        a = QuantumCircuit(14)
        b = QuantumCircuit(14)
        for q in range(14):
            a.h(q)
            b.h(q)
        b.z(0)
        assert circuits_equivalent(a, a.copy())
        assert not circuits_equivalent(a, b)
