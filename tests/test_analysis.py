"""wLint static-analysis layer: report contracts, registry stability,
stack wiring, CLI exit codes, and static/dynamic agreement.

Three properties anchor the suite:

* the diagnostic artifacts (:class:`Diagnostic`, :class:`AnalysisReport`)
  JSON round trip as fixed points — the contract the result cache and
  the service artifact store rest on;
* the rule registry is append-only with stable ``WL###`` codes;
* on every (target, device) cell of a compile matrix, the static
  analyzer's verdict agrees with the dynamic wChecker: both accept the
  healthy artifact, and (see ``test_failure_injection.py``) both reject
  every injected fault.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.analysis import (
    ANALYSIS_SCHEMA_VERSION,
    AnalysisReport,
    Diagnostic,
    LintRule,
    RETIRED_CODES,
    Severity,
    SourceLocation,
    all_rules,
    analyze_circuit,
    analyze_result,
    canonical_analyze_options,
    format_report,
    get_rule,
    register_rule,
)
from repro.analysis.registry import _NAMES, _RULES
from repro.cli import main as cli_main
from repro.devices import DeviceProfile, list_devices
from repro.exceptions import AnalysisError, VerificationError
from repro.sat import random_ksat
from repro.targets import CompilerSession


# ----------------------------------------------------------------------
# Registry stability
# ----------------------------------------------------------------------
class TestRegistry:
    def test_codes_are_wellformed_and_unique(self):
        rules = all_rules()
        assert rules, "registry must not be empty"
        codes = [rule.code for rule in rules]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))
        for code in codes:
            assert len(code) == 5 and code.startswith("WL")
            assert code[2:].isdigit()

    def test_rule_names_unique(self):
        names = [rule.name for rule in all_rules()]
        assert len(names) == len(set(names))

    def test_known_codes_are_stable(self):
        """Published codes are append-only: these must never be renamed."""
        expectations = {
            "WL011": "shuttle-order-violation",
            "WL020": "double-bind",
            "WL023": "transfer-occupancy",
            "WL026": "readout-orphan-atom",
            "WL040": "rydberg-cluster-mismatch",
            "WL043": "raman-gate-mismatch",
            "WL051": "duration-mismatch",
            "WL060": "circuit-qubit-range",
        }
        for code, name in expectations.items():
            assert get_rule(code).name == name

    def test_duplicate_code_rejected(self):
        taken = all_rules()[0]
        with pytest.raises(ValueError):
            register_rule(taken.code, "fresh-name", Severity.ERROR, "dup")

    def test_duplicate_name_rejected(self):
        taken = all_rules()[0]
        with pytest.raises(ValueError):
            register_rule("WL999", taken.name, Severity.ERROR, "dup")

    def test_malformed_code_rejected(self):
        for bad in ("WL1", "XX001", "wl001", "WL0011"):
            with pytest.raises(ValueError):
                register_rule(bad, f"bad-{bad}", Severity.ERROR, "x")

    def test_retired_code_rejected(self):
        if not RETIRED_CODES:
            pytest.skip("no retired codes yet")
        code = next(iter(RETIRED_CODES))
        with pytest.raises(ValueError):
            register_rule(code, "zombie", Severity.ERROR, "x")

    def test_unknown_code_lookup_raises(self):
        with pytest.raises(KeyError):
            get_rule("WL998")

    def test_registration_roundtrip(self):
        rule = register_rule("WL997", "test-only-rule", Severity.INFO, "probe")
        try:
            assert isinstance(rule, LintRule)
            assert get_rule("WL997") is rule
            diagnostic = rule.diagnostic("hello", SourceLocation(operation=3))
            assert diagnostic.code == "WL997"
            assert diagnostic.severity is Severity.INFO
        finally:
            _RULES.pop("WL997")
            _NAMES.pop("test-only-rule")


# ----------------------------------------------------------------------
# Report JSON round trip
# ----------------------------------------------------------------------
def _sample_report() -> AnalysisReport:
    report = AnalysisReport(artifact="probe", num_qubits=4)
    report.diagnostics.append(
        Diagnostic(
            code="WL011",
            severity=Severity.ERROR,
            message="columns crossed",
            location=SourceLocation(operation=2, instruction=5),
            qubits=(1, 3),
        )
    )
    report.diagnostics.append(
        Diagnostic(
            code="WL031",
            severity=Severity.WARNING,
            message="idle qubit",
            location=SourceLocation(),
        )
    )
    report.rules_run = ("WL011", "WL031")
    report.instructions_scanned = 42
    report.analysis_seconds = 0.003
    report.stats = {"cluster_resolutions": 2}
    return report


class TestReportRoundTrip:
    def test_to_from_dict_is_fixed_point(self):
        report = _sample_report()
        payload = json.loads(json.dumps(report.to_dict()))
        restored = AnalysisReport.from_dict(payload)
        assert restored.to_dict() == report.to_dict()
        assert restored.artifact == "probe"
        assert restored.diagnostics[0].location.operation == 2
        assert restored.diagnostics[0].qubits == (1, 3)
        assert restored.diagnostics[0].severity is Severity.ERROR

    def test_wrong_schema_rejected(self):
        payload = _sample_report().to_dict()
        payload["schema"] = ANALYSIS_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            AnalysisReport.from_dict(payload)

    def test_queries(self):
        report = _sample_report()
        assert not report.ok
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert report.count(Severity.INFO) == 0
        assert report.codes() == {"WL011", "WL031"}
        with pytest.raises(VerificationError):
            report.raise_on_error()

    def test_clean_report_ok(self):
        report = AnalysisReport(artifact="clean")
        assert report.ok
        report.raise_on_error()  # no-op
        assert "clean" in report.summary()

    def test_format_report_truncates(self):
        report = _sample_report()
        text = format_report(report, max_findings=1)
        assert "WL011" in text  # errors sort first
        assert "1 more finding" in text

    def test_severity_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank

    def test_location_rendering(self):
        assert str(SourceLocation()) == "program"
        assert str(SourceLocation(operation=-1)) == "setup"
        assert str(SourceLocation(operation=4, instruction=2)) == "op 4.2"


# ----------------------------------------------------------------------
# Options canonicalization
# ----------------------------------------------------------------------
class TestCanonicalOptions:
    def test_disabled_forms(self):
        assert canonical_analyze_options(None) is None
        assert canonical_analyze_options(False) is None

    def test_enabled_forms(self):
        assert canonical_analyze_options(True) == {}
        assert canonical_analyze_options({}) == {}

    def test_bad_type_rejected(self):
        with pytest.raises(AnalysisError):
            canonical_analyze_options("yes")

    def test_unknown_key_rejected(self):
        with pytest.raises(AnalysisError):
            canonical_analyze_options({"strictness": 11})


# ----------------------------------------------------------------------
# Stack wiring: compile(analyze=), result.analyze(), sessions
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def lint_formula():
    return random_ksat(5, 9, seed=13, name="lint-5v")


@pytest.fixture(scope="module")
def analyzed_result(lint_formula):
    return repro.compile(lint_formula, target="fpqa", analyze=True)


class TestStackWiring:
    def test_compile_attaches_payload(self, analyzed_result):
        payload = analyzed_result.analysis
        assert payload is not None
        assert payload["ok"] is True
        assert payload["diagnostics"] == []
        assert payload["schema"] == ANALYSIS_SCHEMA_VERSION

    def test_payload_survives_result_roundtrip(self, analyzed_result):
        raw = json.loads(json.dumps(analyzed_result.to_dict()))
        restored = repro.CompilationResult.from_dict(raw)
        report = AnalysisReport.from_dict(restored.analysis)
        assert report.ok
        assert report.instructions_scanned > 0

    def test_pure_analyze_method(self, analyzed_result):
        report = analyzed_result.analyze()
        assert isinstance(report, AnalysisReport)
        assert report.ok
        assert report.artifact.endswith("@fpqa")
        assert set(report.rules_run) <= {r.code for r in all_rules()}

    def test_circuit_path(self, lint_formula):
        result = repro.compile(lint_formula, target="superconducting")
        report = analyze_result(result)
        assert report.ok
        assert report.instructions_scanned > 0

    def test_artifact_free_result_rejected(self):
        bare = repro.CompilationResult(
            target="atomique", workload="x", num_qubits=3
        )
        with pytest.raises(AnalysisError):
            analyze_result(bare)

    def test_session_keys_lint_separately(self, lint_formula, tmp_path):
        session = CompilerSession(cache_dir=tmp_path)
        linted = session.compile(lint_formula, target="fpqa", analyze=True)
        plain = session.compile(lint_formula, target="fpqa")
        assert linted.analysis is not None
        assert plain.analysis is None
        assert linted is not plain
        again = session.compile(lint_formula, target="fpqa", analyze=True)
        assert again is linted  # cache hit on the lint cell

    def test_compile_many_lints_every_cell(self, lint_formula):
        session = CompilerSession()
        rows = session.compile_many(
            [lint_formula], targets=["fpqa", "fpqa-nocompress"], analyze=True
        )
        assert all(row.analysis is not None for row in rows)
        assert all(row.analysis["ok"] for row in rows)


# ----------------------------------------------------------------------
# Static/dynamic differential: wLint agrees with the wChecker on every
# (target, device) cell of the matrix.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def matrix(lint_formula):
    session = CompilerSession(
        budgets={name: 60.0 for name in repro.available_targets()}
    )
    cells = {}
    for target in repro.available_targets():
        cells[(target, None)] = session.compile(lint_formula, target=target)
    for device in list_devices(kind="fpqa"):
        profile = repro.get_device(device)
        if (
            profile.max_qubits is not None
            and profile.max_qubits < lint_formula.num_vars
        ):
            continue
        cells[("fpqa", device)] = session.compile(
            lint_formula, target="fpqa", device=device
        )
    for device in list_devices(kind="superconducting"):
        cells[("superconducting", device)] = session.compile(
            lint_formula, target="superconducting", device=device
        )
    return cells


class TestStaticDynamicAgreement:
    def test_static_and_dynamic_agree_on_clean_cells(self, matrix):
        """On every artifact-bearing cell both tiers say "safe"."""
        program_cells = 0
        for cell, result in matrix.items():
            assert result.succeeded, (cell, result.error)
            if result.program is None:
                continue
            program_cells += 1
            hardware = (
                DeviceProfile.from_dict(result.device_profile).hardware
                if result.device_profile is not None
                else None
            )
            static = analyze_result(result)
            dynamic = repro.check_program(
                result.program,
                reference=result.native_circuit,
                hardware=hardware,
            )
            assert static.ok == dynamic.ok is True, (
                f"{cell}: static={static.summary()} dynamic={dynamic.ok}"
            )
            assert static.diagnostics == []
        assert program_cells >= 3  # fpqa, fpqa-nocompress, device cells

    def test_circuit_cells_are_clean(self, matrix):
        checked = 0
        for cell, result in matrix.items():
            if result.program is not None or result.native_circuit is None:
                continue
            report = analyze_circuit(result.native_circuit)
            assert report.ok, f"{cell}: {report.summary()}"
            checked += 1
        assert checked >= 1  # the superconducting cells

    def test_bounds_pass_cross_checks_recorded_metrics(self, matrix):
        """The recorded duration/EPS/pulse metrics match a recompute."""
        result = matrix[("fpqa", None)]
        report = analyze_result(result)
        assert report.stats["total_pulses"] == result.num_pulses
        assert {"WL050", "WL051", "WL052"} <= set(report.rules_run)

    def test_tampered_metrics_are_flagged(self, matrix):
        import dataclasses

        result = matrix[("fpqa", None)]
        forged = dataclasses.replace(
            result,
            num_pulses=result.num_pulses + 7,
            eps=(result.eps or 0.1) * 3.0,
        )
        report = analyze_result(forged)
        assert not report.ok
        assert {"WL050", "WL052"} <= report.codes()


# ----------------------------------------------------------------------
# `weaver lint` CLI exit-code contract
# ----------------------------------------------------------------------
class TestLintCli:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        from repro.analysis.mutations import corrupt_shuttle_order

        root = tmp_path_factory.mktemp("lint-cli")
        formula = random_ksat(4, 7, seed=3, name="cli-4v")
        result = repro.compile(formula, target="fpqa")
        clean = root / "clean.wqasm"
        clean.write_text(result.program.to_wqasm(), encoding="utf-8")
        mutant = root / "mutant.wqasm"
        mutant.write_text(
            corrupt_shuttle_order(result.program).to_wqasm(), encoding="utf-8"
        )
        return clean, mutant

    def test_clean_file_exits_zero(self, artifacts, capsys):
        clean, _ = artifacts
        assert cli_main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_error_findings_exit_two(self, artifacts, capsys):
        _, mutant = artifacts
        assert cli_main(["lint", str(mutant)]) == 2
        out = capsys.readouterr().out
        assert "error(s)" in out
        assert "WL" in out

    def test_json_output_parses(self, artifacts, capsys):
        clean, _ = artifacts
        assert cli_main(["lint", str(clean), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        report = AnalysisReport.from_dict(payload)
        assert report.instructions_scanned > 0

    def test_mutant_json_lists_findings(self, artifacts, capsys):
        _, mutant = artifacts
        assert cli_main(["lint", str(mutant), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["diagnostics"]

    def test_missing_input_is_user_error(self, capsys):
        assert cli_main(["lint", "no-such-file.wqasm"]) == 2
        assert "error" in capsys.readouterr().err

    def test_non_fpqa_device_rejected_for_wqasm(self, artifacts, capsys):
        clean, _ = artifacts
        code = cli_main(["lint", str(clean), "--device", "heavyhex-23"])
        assert code == 2
        assert "not an FPQA machine" in capsys.readouterr().err

    def test_compile_and_lint_path(self, tmp_path, capsys):
        from repro.sat import to_dimacs

        formula = random_ksat(4, 6, seed=9, name="cli-compile-4v")
        cnf = tmp_path / "probe.cnf"
        cnf.write_text(to_dimacs(formula), encoding="utf-8")
        assert cli_main(["lint", str(cnf)]) == 0
        captured = capsys.readouterr()
        assert "clean" in captured.out
        assert "compiled" in captured.err
