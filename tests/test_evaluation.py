"""Tests for the evaluation harness (workloads, runner, figure generators)."""

import pytest

from repro.evaluation import (
    EvaluationConfig,
    FIXED_SIZE_INSTANCES,
    ResultStore,
    SCALING_SIZES,
    fig10a_complexity,
    format_table,
    format_value,
    load_workload,
    scaling_instances,
    table2_complexity,
)
from repro.evaluation.figures import (
    fig8a_compilation_fixed,
    fig11a_execution_fixed,
    fig12a_eps_fixed,
)
from repro.evaluation.runner import mean_of


@pytest.fixture(scope="module")
def tiny_store():
    """A store restricted to fast compilers and two tiny workloads."""
    config = EvaluationConfig(
        compilers=("weaver", "atomique"),
        fixed_instances=("uf20-01", "uf20-02"),
        scaling_sizes=(20,),
        instances_per_size=1,
    )
    return ResultStore(config)


class TestWorkloads:
    def test_fixed_instances_are_ten(self):
        assert len(FIXED_SIZE_INSTANCES) == 10
        assert FIXED_SIZE_INSTANCES[0] == "uf20-01"

    def test_scaling_sizes_match_paper(self):
        assert SCALING_SIZES == (20, 50, 75, 100, 150, 250)

    def test_load_workload_cached(self):
        assert load_workload("uf20-01") is load_workload("uf20-01")

    def test_scaling_instances(self):
        assert scaling_instances(50, 2) == ["uf50-01", "uf50-02"]

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            scaling_instances(33)


class TestRunner:
    def test_results_cached(self, tiny_store):
        first = tiny_store.run("weaver", "uf20-01")
        second = tiny_store.run("weaver", "uf20-01")
        assert first is second

    def test_unknown_compiler_rejected(self, tiny_store):
        with pytest.raises(KeyError):
            tiny_store.run("pixie", "uf20-01")

    def test_superconducting_capacity_rule(self):
        store = ResultStore(EvaluationConfig(compilers=("superconducting",)))
        result = store.run("superconducting", "uf150-01")
        assert result.error is not None

    def test_attempt_limit_marks_timeouts_without_running(self):
        store = ResultStore(EvaluationConfig(compilers=("dpqa",)))
        result = store.run("dpqa", "uf250-01")
        assert result.timed_out
        assert result.compile_seconds > 0

    def test_mean_of_skips_none(self):
        assert mean_of([1.0, None, 3.0]) == 2.0
        assert mean_of([None]) is None


class TestFigures:
    def test_fig8a_rows(self, tiny_store):
        rows = fig8a_compilation_fixed(tiny_store)
        assert rows[-1]["workload"] == "Mean"
        assert rows[0]["weaver"] > 0

    def test_fig11a_rows(self, tiny_store):
        rows = fig11a_execution_fixed(tiny_store)
        assert all(row["weaver"] > 0 for row in rows)

    def test_fig12a_rows(self, tiny_store):
        rows = fig12a_eps_fixed(tiny_store)
        assert all(0 < row["weaver"] <= 1 for row in rows)
        assert "geyser" not in rows[0]

    def test_fig10a_static_curves(self):
        rows = fig10a_complexity(sizes=(20, 50))
        assert rows[0]["weaver"] == 400
        assert rows[0]["superconducting"] == 8000
        assert rows[1]["num_ops_K"] > rows[0]["num_ops_K"]

    def test_table2(self):
        rows = table2_complexity()
        assert {"compiler": "weaver", "complexity": "O(N^2)"} in rows


class TestReporting:
    def test_none_prints_as_x(self):
        assert format_value(None) == "X"

    def test_small_floats_scientific(self):
        assert "e" in format_value(1.5e-9)

    def test_midrange_floats_compact(self):
        assert format_value(1.2345) == "1.234"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": None}, {"a": 22, "b": 0.5}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "X" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, two rows

    def test_empty_table(self):
        assert "(empty)" in format_table([], title="nothing")
