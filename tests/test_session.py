"""CompilerSession: batching, ordering, budgets, and the result caches."""

import pytest

import repro
from repro import CompilerSession
from repro.sat import CnfFormula


def _formulas(count: int) -> list[CnfFormula]:
    return [
        CnfFormula.from_lists(
            [[1, -2, 3], [-1, 2, 4], [2, 3, -4]], num_vars=4, name=f"batch-{i}"
        )
        for i in range(count)
    ]


class TestCompileMany:
    def test_results_in_input_order_parallel_2(self):
        workloads = _formulas(4)
        session = CompilerSession()
        results = session.compile_many(
            workloads, targets=["fpqa", "atomique"], parallel=2
        )
        assert [(r.workload, r.target) for r in results] == [
            (w.name, t) for w in workloads for t in ("fpqa", "atomique")
        ]
        assert all(r.succeeded for r in results)

    def test_sequential_matches_parallel(self):
        workloads = _formulas(3)
        sequential = CompilerSession().compile_many(workloads, targets="fpqa")
        parallel = CompilerSession().compile_many(
            workloads, targets="fpqa", parallel=2
        )
        assert [r.num_pulses for r in sequential] == [r.num_pulses for r in parallel]
        assert [r.eps for r in sequential] == pytest.approx([r.eps for r in parallel])

    def test_duplicate_cells_compiled_once(self):
        workload = _formulas(1)[0]
        session = CompilerSession()
        results = session.compile_many([workload, workload], targets="fpqa")
        assert results[0] is results[1]

    def test_unknown_target_rejected_before_compiling(self):
        with pytest.raises(repro.UnknownTargetError):
            CompilerSession().compile_many(_formulas(1), targets=["fpqa", "pixie"])

    def test_failures_become_result_rows(self, tiny_formula):
        # A circuit workload cannot feed a formula-only target: the session
        # reports the error instead of raising (service contract).
        circuit = repro.qaoa_circuit(tiny_formula, measure=False)
        session = CompilerSession()
        result = session.compile(circuit, target="atomique")
        assert not result.succeeded
        assert "WorkloadError" in result.error

    def test_budget_becomes_timed_out_row(self, tiny_formula):
        session = CompilerSession(budgets={"fpqa": 1e-9})
        result = session.compile(tiny_formula, target="fpqa")
        assert result.timed_out
        assert not result.succeeded


class TestProfilerAccounting:
    """Cache/dedup accounting must not depend on the execution path.

    ``compile_many(parallel > 1)`` quietly drops to the serial path when
    only one cell actually needs compiling (``len(submit) == 1``); the
    regression here is that both that fallback and the real pool branch
    record identical cache-hit and dedup counters in the session's
    profiler.
    """

    def _caches(self, session: CompilerSession) -> dict:
        return session.stats()["caches"]

    def test_serial_fallback_records_cache_hit(self):
        # One workload + parallel=2 -> len(submit) == 1 -> serial fallback.
        workload = _formulas(1)[0]
        session = CompilerSession()
        session.compile_many([workload], targets="fpqa", parallel=2)
        caches = self._caches(session)
        assert caches["session.results"] == {"hits": 0, "misses": 1}
        # The bypass is observable, not silent.
        assert "session.pool_bypass" in session.stats()["primitives"]

        session.compile_many([workload], targets="fpqa", parallel=2)
        caches = self._caches(session)
        assert caches["session.results"] == {"hits": 1, "misses": 1}

    def test_pool_branch_records_cache_hit(self):
        # Three distinct workloads -> len(submit) == 3 -> process pool.
        workloads = _formulas(3)
        session = CompilerSession()
        session.compile_many(workloads, targets="fpqa", parallel=2)
        caches = self._caches(session)
        assert caches["session.results"] == {"hits": 0, "misses": 3}
        assert "session.pool_bypass" not in session.stats()["primitives"]

        session.compile_many(workloads, targets="fpqa", parallel=2)
        caches = self._caches(session)
        assert caches["session.results"] == {"hits": 3, "misses": 3}

    def test_dedup_recorded_in_serial_fallback(self):
        # Two copies of one cell dedup to a single submit -> serial
        # fallback; the duplicate must still count as a dedup hit.
        workload = _formulas(1)[0]
        session = CompilerSession()
        results = session.compile_many([workload, workload], targets="fpqa", parallel=2)
        assert results[0] is results[1]
        caches = self._caches(session)
        assert caches["session.dedup"] == {"hits": 1, "misses": 1}
        assert caches["session.results"] == {"hits": 0, "misses": 2}

    def test_dedup_recorded_in_pool_branch(self):
        a, b = _formulas(2)
        a2 = CnfFormula.from_lists(
            [[1, -2, 3], [-1, 2, 4], [2, 3, -4]], num_vars=4, name=a.name
        )
        session = CompilerSession()
        results = session.compile_many([a, a2, b, b], targets="fpqa", parallel=2)
        assert results[0] is results[1]
        assert results[2] is results[3]
        caches = self._caches(session)
        assert caches["session.dedup"] == {"hits": 2, "misses": 2}

    def test_single_compile_path_matches_batch_accounting(self, tiny_formula):
        session = CompilerSession()
        session.compile(tiny_formula, target="fpqa")
        session.compile(tiny_formula, target="fpqa")
        assert self._caches(session)["session.results"] == {"hits": 1, "misses": 1}

    def test_caller_supplied_profiler_is_used(self, tiny_formula):
        from repro.perf import Profiler

        profiler = Profiler()
        session = CompilerSession(profiler=profiler)
        session.compile(tiny_formula, target="fpqa")
        assert profiler.caches["session.results"] == [0, 1]


class TestCaching:
    def test_memory_cache_hits(self, tiny_formula):
        session = CompilerSession()
        first = session.compile(tiny_formula, target="fpqa")
        second = session.compile(tiny_formula, target="fpqa")
        assert second is first
        assert second.cached

    def test_disk_cache_survives_sessions(self, tmp_path, tiny_formula):
        cache = tmp_path / "cache"
        first = CompilerSession(cache_dir=cache).compile(tiny_formula, target="fpqa")
        assert not first.cached
        assert list(cache.glob("*.json"))
        second = CompilerSession(cache_dir=cache).compile(tiny_formula, target="fpqa")
        assert second.cached
        assert second.num_pulses == first.num_pulses
        assert second.program.pulse_counts() == first.program.pulse_counts()

    def test_distinct_options_are_distinct_cells(self, tmp_path, tiny_formula):
        session = CompilerSession(cache_dir=tmp_path / "cache")
        on = session.compile(tiny_formula, target="fpqa", compression=True)
        off = session.compile(tiny_formula, target="fpqa", compression=False)
        assert on.num_pulses != off.num_pulses

    def test_error_rows_not_persisted(self, tmp_path, tiny_formula):
        cache = tmp_path / "cache"
        session = CompilerSession(cache_dir=cache)
        circuit = repro.qaoa_circuit(tiny_formula, measure=False)
        result = session.compile(circuit, target="atomique")
        assert result.error is not None
        assert not list(cache.glob("*.json"))

    def test_error_rows_retried_within_session(self, tiny_formula):
        """Transient failures must not be served back from the memory cache."""
        circuit = repro.qaoa_circuit(tiny_formula, measure=False)
        session = CompilerSession()
        first = session.compile(circuit, target="atomique")
        second = session.compile(circuit, target="atomique")
        assert first.error is not None
        assert second is not first  # recompiled, not a cache hit
        assert not second.cached

    def test_unsupported_option_is_error_not_noop(self, tiny_formula):
        with pytest.raises(repro.TargetError, match="measure"):
            repro.compile(tiny_formula, target="atomique", measure=False)
        with pytest.raises(repro.TargetError, match="compression"):
            repro.compile(tiny_formula, target="superconducting", compression=True)

    def test_bigger_budget_retries_cached_timeout(self, tmp_path, tiny_formula):
        """A timed-out row must not shadow a retry under a larger budget."""
        cache = tmp_path / "cache"
        strangled = CompilerSession(budgets={"fpqa": 1e-9}, cache_dir=cache)
        first = strangled.compile(tiny_formula, target="fpqa")
        assert first.timed_out
        generous = CompilerSession(budgets={"fpqa": 120.0}, cache_dir=cache)
        second = generous.compile(tiny_formula, target="fpqa")
        assert second.succeeded

    def test_target_options_are_part_of_cache_key(self, tmp_path, tiny_formula):
        from repro import FPQAHardwareParams

        cache = tmp_path / "cache"
        default = CompilerSession(cache_dir=cache).compile(tiny_formula)
        degraded_hw = FPQAHardwareParams().with_overrides(fidelity_ccz=0.5)
        degraded = CompilerSession(
            cache_dir=cache, target_options={"fpqa": {"hardware": degraded_hw}}
        ).compile(tiny_formula)
        assert not degraded.cached
        assert degraded.eps < default.eps

    def test_disk_cache_restores_native_circuit(self, tmp_path, tiny_formula):
        cache = tmp_path / "cache"
        first = CompilerSession(cache_dir=cache).compile(tiny_formula, target="fpqa")
        second = CompilerSession(cache_dir=cache).compile(tiny_formula, target="fpqa")
        assert second.cached
        assert second.native_circuit is not None
        assert second.native_circuit.num_qubits == first.native_circuit.num_qubits

    def test_clear_cache(self, tmp_path, tiny_formula):
        cache = tmp_path / "cache"
        session = CompilerSession(cache_dir=cache)
        session.compile(tiny_formula, target="fpqa")
        session.clear_cache(disk=True)
        assert not list(cache.glob("*.json"))
        again = session.compile(tiny_formula, target="fpqa")
        assert not again.cached
