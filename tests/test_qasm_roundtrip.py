"""Property-based QASM round-trip tests and parser error-path contracts.

Two properties anchor the OpenQASM front end:

* **round trip** — ``circuit -> printer -> parser -> circuit`` preserves
  the unitary (exactly, up to global phase) for random circuits over the
  full gate menu, and the printed text is a fixed point of the round
  trip; and
* **user-facing failure** — malformed source (truncated files, bad gate
  arity, absurd declarations) raises a :class:`~repro.WeaverError`
  subclass with a location/message, never an internal ``IndexError`` /
  ``MemoryError`` / ``ValueError``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import QuantumCircuit
from repro.circuits.random_circuits import random_circuit, random_diagonal_circuit
from repro.checker.unitary_check import EquivalenceMethod, equivalence_check
from repro.exceptions import (
    CircuitError,
    QasmSemanticError,
    QasmSyntaxError,
    WeaverError,
)
from repro.qasm import circuit_to_qasm, qasm_to_circuit

#: Shared hypothesis profile: deterministic (CI-stable), no deadline —
#: unitary checks on 4 qubits can outlast the default 200ms on slow boxes.
ROUNDTRIP_SETTINGS = settings(max_examples=30, deadline=None, derandomize=True)


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
class TestRoundTripProperties:
    @ROUNDTRIP_SETTINGS
    @given(
        seed=st.integers(0, 10**6),
        num_qubits=st.integers(1, 4),
        num_gates=st.integers(0, 16),
        measure=st.booleans(),
    )
    def test_unitary_preserved(self, seed, num_qubits, num_gates, measure):
        circuit = random_circuit(num_qubits, num_gates, seed=seed, measure=measure)
        back = qasm_to_circuit(circuit_to_qasm(circuit))
        assert back.num_qubits == circuit.num_qubits
        same, method = equivalence_check(circuit, back)
        assert method is EquivalenceMethod.UNITARY
        assert same

    @ROUNDTRIP_SETTINGS
    @given(seed=st.integers(0, 10**6), num_qubits=st.integers(2, 4))
    def test_diagonal_circuits_round_trip(self, seed, num_qubits):
        circuit = random_diagonal_circuit(num_qubits, 12, seed=seed)
        same, _ = equivalence_check(circuit, qasm_to_circuit(circuit_to_qasm(circuit)))
        assert same

    @ROUNDTRIP_SETTINGS
    @given(seed=st.integers(0, 10**6))
    def test_printed_text_is_fixed_point(self, seed):
        """print(parse(print(c))) == print(c): one trip canonicalizes."""
        circuit = random_circuit(3, 10, seed=seed, measure=True)
        text = circuit_to_qasm(circuit)
        assert circuit_to_qasm(qasm_to_circuit(text)) == text

    @ROUNDTRIP_SETTINGS
    @given(seed=st.integers(0, 10**6), num_qubits=st.integers(1, 4))
    def test_measurements_preserved(self, seed, num_qubits):
        circuit = random_circuit(num_qubits, 6, seed=seed, measure=True)
        back = qasm_to_circuit(circuit_to_qasm(circuit))
        wanted = [
            (inst.qubits, inst.clbits)
            for inst in circuit.instructions
            if inst.name == "measure"
        ]
        got = [
            (inst.qubits, inst.clbits)
            for inst in back.instructions
            if inst.name == "measure"
        ]
        assert got == wanted

    def test_extreme_parameters_round_trip(self):
        circuit = QuantumCircuit(1)
        for value in (1e-17, -2.5e300, 3.141592653589793, -0.0):
            circuit.rz(value, 0)
        back = qasm_to_circuit(circuit_to_qasm(circuit))
        assert [inst.params for inst in back.instructions] == [
            inst.params for inst in circuit.instructions
        ]


# ----------------------------------------------------------------------
# Error paths: always a WeaverError, never an internal crash
# ----------------------------------------------------------------------
TRUNCATED_SOURCES = {
    "mid-operand": "OPENQASM 3.0;\nqubit[4] q;\nh q[",
    "mid-declaration": "OPENQASM 3.0;\nqubit[",
    "mid-params": "OPENQASM 3.0;\nqubit[2] q;\nrx(0.5",
    "mid-measure": "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nmeasure q[0] ->",
    "mid-string": 'OPENQASM 2.0;\ninclude "qelib1.inc',
    "mid-gate-body": "OPENQASM 2.0;\ngate foo a { h a;",
}

BAD_ARITY_SOURCES = {
    "cx-one-operand": "OPENQASM 3.0;\nqubit[2] q;\ncx q[0];",
    "h-two-operands": "OPENQASM 3.0;\nqubit[2] q;\nh q[0], q[1];",
    "ccx-two-operands": "OPENQASM 3.0;\nqubit[3] q;\nccx q[0], q[1];",
    "h-with-param": "OPENQASM 3.0;\nqubit[2] q;\nh(0.5) q[0];",
    "rx-missing-param": "OPENQASM 3.0;\nqubit[2] q;\nrx q[0];",
    "cx-duplicate-qubit": "OPENQASM 3.0;\nqubit[2] q;\ncx q[0], q[0];",
}


class TestErrorPaths:
    @pytest.mark.parametrize("name", sorted(TRUNCATED_SOURCES))
    def test_truncated_files_raise_syntax_errors(self, name):
        with pytest.raises(QasmSyntaxError) as excinfo:
            qasm_to_circuit(TRUNCATED_SOURCES[name])
        assert "line" in str(excinfo.value)

    @pytest.mark.parametrize("name", sorted(BAD_ARITY_SOURCES))
    def test_bad_gate_arity_raises_user_errors(self, name):
        with pytest.raises((CircuitError, QasmSemanticError)):
            qasm_to_circuit(BAD_ARITY_SOURCES[name])

    def test_every_prefix_of_a_valid_program_fails_cleanly(self):
        """Truncation property: any prefix parses or raises a WeaverError.

        This sweeps *all* byte-truncation points of a representative
        program — the property that no lexer/parser state can escape
        with an IndexError on EOF.
        """
        text = circuit_to_qasm(random_circuit(3, 8, seed=7, measure=True))
        survived = 0
        for cut in range(len(text)):
            prefix = text[:cut]
            try:
                qasm_to_circuit(prefix)
                survived += 1
            except WeaverError:
                pass  # user-facing by contract
        # Sanity: some prefixes are themselves valid programs.
        assert survived > 0

    def test_unknown_gate_is_user_error(self):
        with pytest.raises(CircuitError, match="frobnicate"):
            qasm_to_circuit("OPENQASM 3.0;\nqubit[2] q;\nfrobnicate q[0];")

    def test_out_of_range_index_is_user_error(self):
        with pytest.raises(QasmSemanticError, match="out of range"):
            qasm_to_circuit("OPENQASM 3.0;\nqubit[2] q;\nh q[5];")

    def test_absurd_register_size_is_user_error_not_memoryerror(self):
        with pytest.raises(QasmSemanticError, match="maximum"):
            qasm_to_circuit("OPENQASM 3.0;\nqubit[99999999999] q;\nh q;")

    def test_division_by_zero_in_params_is_user_error(self):
        with pytest.raises(QasmSyntaxError, match="division by zero"):
            qasm_to_circuit("OPENQASM 3.0;\nqubit[1] q;\nrx(pi/0) q[0];")
