"""Tests for the zone geometry invariants."""

import math

import pytest

from repro.exceptions import FPQAConstraintError
from repro.fpqa import zone_layout


@pytest.fixture
def geo():
    return zone_layout()


class TestDerivedConstants:
    def test_triangle_side_within_radius(self, geo):
        assert geo.triangle_side_um <= geo.hardware.rydberg_radius_um
        assert geo.triangle_side_um >= geo.hardware.min_trap_spacing_um

    def test_control_height_is_equilateral(self, geo):
        assert geo.control_height_um == pytest.approx(
            geo.triangle_side_um * math.sqrt(3) / 2
        )

    def test_stage_gap_beyond_radius(self, geo):
        assert geo.stage_gap_um > geo.hardware.rydberg_radius_um

    def test_invalid_triangle_rejected(self):
        with pytest.raises(FPQAConstraintError):
            zone_layout(triangle_side_um=20.0)  # beyond Rydberg radius

    def test_too_small_separation_rejected(self):
        with pytest.raises(FPQAConstraintError):
            zone_layout(separation_offset_um=1.0)

    def test_crowded_slots_rejected(self):
        with pytest.raises(FPQAConstraintError):
            zone_layout(slot_pitch_um=15.0)


class TestPositions:
    def test_triangle_is_equidistant(self, geo):
        target = geo.target_position(0, 0)
        a, b = geo.control_positions(0, 0)
        dist_ab = math.dist(a, b)
        dist_at = math.dist(a, target)
        dist_bt = math.dist(b, target)
        assert dist_ab == pytest.approx(dist_at)
        assert dist_ab == pytest.approx(dist_bt)
        assert dist_ab == pytest.approx(geo.triangle_side_um)

    def test_stage_positions_out_of_target_range(self, geo):
        target = geo.target_position(2, 1)
        for pos in geo.stage_positions(2, 1):
            assert math.dist(pos, target) > geo.hardware.rydberg_radius_um

    def test_pair_positions_within_radius_of_each_other(self, geo):
        a, b = geo.pair_positions(0, 0)
        assert math.dist(a, b) <= geo.hardware.rydberg_radius_um

    def test_pair_positions_out_of_target_range(self, geo):
        target = geo.target_position(0, 0)
        for pos in geo.pair_positions(0, 0):
            assert math.dist(pos, target) > geo.hardware.rydberg_radius_um

    def test_bt_hover_geometry(self, geo):
        target = geo.target_position(0, 0)
        a, b = geo.bt_positions(0, 0)
        assert math.dist(b, target) <= geo.hardware.rydberg_radius_um
        assert math.dist(a, target) > geo.hardware.rydberg_radius_um
        assert math.dist(a, b) > geo.hardware.rydberg_radius_um

    def test_at_hover_geometry(self, geo):
        target = geo.target_position(0, 0)
        a, b = geo.at_positions(0, 0)
        assert math.dist(a, target) <= geo.hardware.rydberg_radius_um
        assert math.dist(b, target) > geo.hardware.rydberg_radius_um

    def test_adjacent_slots_never_interact(self, geo):
        # Even at the widest stance, neighbor-slot atoms stay out of range.
        _, b0 = geo.stage_positions(0, 0)
        a1, _ = geo.stage_positions(0, 1)
        assert math.dist(b0, a1) > geo.hardware.rydberg_radius_um

    def test_home_positions_distinct_x(self, geo):
        xs = [geo.home_position(v, 10)[0] for v in range(10)]
        assert len(set(xs)) == 10

    def test_home_pitch_beyond_radius(self, geo):
        assert geo.home_pitch_um > geo.hardware.rydberg_radius_um


class TestZoneGrid:
    def test_diagonal_layout_when_no_grid(self):
        geo = zone_layout()
        x0, y0 = geo.zone_origin(0)
        x1, y1 = geo.zone_origin(1)
        assert y1 - y0 == pytest.approx(geo.zone_pitch_um)
        assert x1 - x0 == pytest.approx(geo.diagonal_step_um)

    def test_grid_layout_packs_rows(self):
        geo = zone_layout(zones_per_row=3, slots_per_zone=2)
        # Zones 0..2 share a row; zone 3 starts the next row.
        assert geo.zone_origin(0)[1] == geo.zone_origin(2)[1]
        assert geo.zone_origin(3)[1] > geo.zone_origin(0)[1]

    def test_grid_cells_do_not_overlap(self):
        geo = zone_layout(zones_per_row=2, slots_per_zone=3)
        width = geo.zone_cell_width_um()
        x0 = geo.zone_origin(0)[0]
        x1 = geo.zone_origin(1)[0]
        assert x1 - x0 == pytest.approx(width)

    def test_zones_vertically_separated(self):
        geo = zone_layout(zones_per_row=2, slots_per_zone=2)
        y_step = geo.zone_origin(2)[1] - geo.zone_origin(0)[1]
        zone_height = geo.control_height_um + geo.separation_offset_um
        assert y_step > zone_height + geo.hardware.rydberg_radius_um
