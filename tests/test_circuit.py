"""Unit tests for the circuit IR."""

import pytest

from repro.circuits import Instruction, QuantumCircuit
from repro.circuits.gates import Gate, make_gate
from repro.exceptions import CircuitError


class TestConstruction:
    def test_negative_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)

    def test_append_by_name(self):
        qc = QuantumCircuit(2)
        qc.append("cx", (0, 1))
        assert qc.instructions[0].name == "cx"

    def test_append_out_of_range_qubit(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.h(2)

    def test_append_out_of_range_clbit(self):
        qc = QuantumCircuit(2, 1)
        with pytest.raises(CircuitError):
            qc.measure(0, 1)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).cx(1, 1)

    def test_chaining(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).ccz(0, 1, 2)
        assert len(qc) == 3

    def test_every_convenience_method(self):
        qc = QuantumCircuit(3, 3)
        qc.id(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0).sx(0)
        qc.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0).u3(0.1, 0.2, 0.3, 0)
        qc.raman(0.1, 0.2, 0.3, 0)
        qc.cx(0, 1).cz(0, 1).cp(0.5, 0, 1).rzz(0.6, 0, 1).swap(0, 1)
        qc.ccx(0, 1, 2).ccz(0, 1, 2).mcz((0, 1, 2))
        qc.measure(0, 0).barrier()
        assert qc.size == 25  # barrier excluded

    def test_measure_all_grows_clbits(self):
        qc = QuantumCircuit(3)
        qc.measure_all()
        assert qc.num_clbits == 3
        assert qc.count_ops()["measure"] == 3


class TestInspection:
    def test_count_ops_excludes_barrier(self):
        qc = QuantumCircuit(2).h(0).barrier().h(1)
        assert qc.count_ops() == {"h": 2}

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(2).h(0).h(1)
        assert qc.depth() == 1

    def test_depth_sequential_gates(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        assert qc.depth() == 3

    def test_depth_barrier_synchronizes(self):
        qc = QuantumCircuit(2).h(0).barrier().h(1)
        assert qc.depth() == 2

    def test_num_gates_by_arity(self):
        qc = QuantumCircuit(3).h(0).cx(0, 1).ccz(0, 1, 2).measure_all()
        assert qc.num_gates(1) == 1
        assert qc.num_gates(2) == 1
        assert qc.num_gates(3) == 1
        assert qc.num_gates() == 3

    def test_qubits_used(self):
        qc = QuantumCircuit(5).cx(1, 3)
        assert qc.qubits_used() == {1, 3}

    def test_two_qubit_pairs_sorted(self):
        qc = QuantumCircuit(3).cx(2, 0).cz(1, 2)
        assert qc.two_qubit_pairs() == [(0, 2), (1, 2)]

    def test_empty_circuit_depth(self):
        assert QuantumCircuit(3).depth() == 0


class TestWholeCircuitOps:
    def test_copy_is_independent(self):
        qc = QuantumCircuit(1).h(0)
        other = qc.copy()
        other.x(0)
        assert len(qc) == 1 and len(other) == 2

    def test_compose_widens(self):
        inner = QuantumCircuit(2).cx(0, 1)
        outer = QuantumCircuit(4)
        outer.compose(inner, qubits=[2, 3])
        assert outer.instructions[0].qubits == (2, 3)

    def test_compose_size_mismatch(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(4).compose(QuantumCircuit(2).h(0), qubits=[1])

    def test_compose_too_many_qubits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1).compose(QuantumCircuit(2).cx(0, 1))

    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(1).s(0).t(0)
        inv = qc.inverse()
        assert [i.name for i in inv.instructions] == ["tdg", "sdg"]

    def test_inverse_rejects_measurement(self):
        qc = QuantumCircuit(1, 1).measure(0, 0)
        with pytest.raises(CircuitError):
            qc.inverse()

    def test_remapped(self):
        qc = QuantumCircuit(3).cx(0, 2)
        out = qc.remapped({0: 1, 1: 0, 2: 2})
        assert out.instructions[0].qubits == (1, 2)

    def test_without_measurements(self):
        qc = QuantumCircuit(1, 1).h(0).measure(0, 0)
        assert qc.without_measurements().count_ops() == {"h": 1}

    def test_equality(self):
        a = QuantumCircuit(1).h(0)
        b = QuantumCircuit(1).h(0)
        assert a == b
        b.x(0)
        assert a != b

    def test_from_instructions(self):
        insts = [Instruction(make_gate("h"), (0,))]
        qc = QuantumCircuit.from_instructions(2, insts)
        assert len(qc) == 1


class TestInstruction:
    def test_gate_arity_enforced(self):
        with pytest.raises(CircuitError):
            Instruction(make_gate("cx"), (0,))

    def test_measure_any_arity_allowed(self):
        Instruction(Gate("measure", 1), (0,), (0,))

    def test_remap_with_dict(self):
        inst = Instruction(make_gate("cz"), (0, 1))
        assert inst.remap({0: 5, 1: 6}).qubits == (5, 6)

    def test_remap_with_list(self):
        inst = Instruction(make_gate("cz"), (0, 1))
        assert inst.remap([3, 4]).qubits == (3, 4)
