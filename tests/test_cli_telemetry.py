"""CLI front door for telemetry: ``weaver trace`` / ``weaver top``."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.sat import CnfFormula, to_dimacs
from repro.telemetry import (
    read_spans_jsonl,
    tracing_enabled,
    validate_chrome_trace,
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture()
def cnf_file(tmp_path) -> Path:
    formula = CnfFormula.from_lists(
        [[1, -2, 3], [-1, 2, 4], [2, 3, -4]], num_vars=4, name="cli-tel"
    )
    path = tmp_path / "cli-tel.cnf"
    path.write_text(to_dimacs(formula), encoding="utf-8")
    return path


class TestTraceCommand:
    def test_records_a_compile_as_valid_chrome_trace(
        self, tmp_path, cnf_file, capsys
    ):
        trace_path = tmp_path / "compile-trace.json"
        out_path = tmp_path / "out.wqasm"
        rc = main(
            ["trace", "-o", str(trace_path),
             "compile", str(cnf_file), "-o", str(out_path)]
        )
        assert rc == 0
        # Tracing is off again after the recording.
        assert not tracing_enabled()
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        count = validate_chrome_trace(payload)
        assert count >= 2  # the compile span plus its passes
        err = capsys.readouterr().err
        assert "compile.fpqa" in err
        assert str(trace_path) in err
        assert "OPENQASM" in out_path.read_text(encoding="utf-8")

    def test_trace_spans_compile_and_sim_end_to_end(
        self, tmp_path, cnf_file, capsys
    ):
        """Acceptance: one recording covers compile -> sim."""
        trace_path = tmp_path / "sim-trace.json"
        rc = main(
            ["trace", "-o", str(trace_path),
             "simulate", str(cnf_file), "--shots", "50", "--seed", "3"]
        )
        assert rc == 0
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        validate_chrome_trace(payload)
        names = {
            e["name"] for e in payload["traceEvents"] if e["ph"] == "X"
        }
        assert "compile.fpqa" in names
        assert "sim.run" in names

    def test_jsonl_output(self, tmp_path, cnf_file):
        trace_path = tmp_path / "spans.jsonl"
        rc = main(
            ["trace", "--jsonl", "-o", str(trace_path),
             "compile", str(cnf_file), "-o", str(tmp_path / "x.wqasm")]
        )
        assert rc == 0
        spans = read_spans_jsonl(trace_path)
        assert any(s["name"] == "compile.fpqa" for s in spans)

    def test_summarizes_existing_trace_file(self, tmp_path, cnf_file, capsys):
        trace_path = tmp_path / "t.json"
        assert main(
            ["trace", "-o", str(trace_path),
             "compile", str(cnf_file), "-o", str(tmp_path / "y.wqasm")]
        ) == 0
        capsys.readouterr()
        rc = main(["trace", str(trace_path)])
        assert rc == 0
        assert "compile.fpqa" in capsys.readouterr().out

    def test_without_command_exits_2(self, capsys):
        rc = main(["trace"])
        assert rc == 2
        assert "needs a weaver command" in capsys.readouterr().err

    def test_cannot_record_itself(self, capsys):
        rc = main(["trace", "trace", "something"])
        assert rc == 2

    def test_inner_failure_still_writes_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "fail.json"
        rc = main(
            ["trace", "-o", str(trace_path), "compile", "/nonexistent.cnf"]
        )
        assert rc == 2  # the inner command's exit code propagates
        assert not tracing_enabled()
        assert trace_path.exists()


class TestTopCommand:
    def test_top_against_absent_socket_exits_2(self, tmp_path, capsys):
        rc = main(["top", "--socket", str(tmp_path / "absent.sock")])
        assert rc == 2
        assert "weaver serve" in capsys.readouterr().err


@pytest.mark.slow
def test_serve_trace_top_round_trip(tmp_path, cnf_file, capsys):
    """Subprocess loop: serve --trace, submit, top, stats, shutdown."""
    socket = tmp_path / "weaver.sock"
    trace_path = tmp_path / "serve-trace.json"
    env = {
        **os.environ,
        "PYTHONPATH": REPO_SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
    }
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", str(socket),
         "--shards", "1", "--trace", str(trace_path)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        deadline = time.time() + 30
        while not socket.exists():
            assert server.poll() is None, "server died during startup"
            assert time.time() < deadline, "server socket never appeared"
            time.sleep(0.05)

        rc = main(
            ["submit", str(cnf_file), "--socket", str(socket),
             "-o", str(tmp_path / "out.wqasm")]
        )
        assert rc == 0

        rc = main(["top", "--socket", str(socket)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 submitted, 1 completed" in out
        assert "service.job_seconds" in out
        assert "p50" in out and "p99" in out

        # Formatted stats table (quantiles), raw JSON behind --json.
        rc = main(["submit", "--stats", "--socket", str(socket)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "service.jobs.completed" in out
        assert "p99" in out

        rc = main(["submit", "--stats", "--json", "--socket", str(socket)])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["metrics"]["series"]

        rc = main(["submit", "--shutdown", "--socket", str(socket)])
        assert rc == 0
        assert server.wait(timeout=30) == 0

        # The server recorded its side as a valid Chrome trace with the
        # full job lifecycle.
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        validate_chrome_trace(payload)
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert "service.job.compile" in names
        assert "service.queue.wait" in names
        assert "compile.fpqa" in names
        # The shutdown report printed the metrics table to stderr.
        stderr = server.stderr.read().decode("utf-8", "replace")
        assert "service.job_seconds" in stderr
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGINT)
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
        if server.stderr is not None:
            server.stderr.close()
