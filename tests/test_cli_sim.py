"""CLI tests for ``weaver simulate`` (and ``submit --simulate`` parsing)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

TINY_CNF = """c tiny
p cnf 4 3
1 -2 3 0
-1 2 4 0
2 3 -4 0
"""


@pytest.fixture()
def tiny_cnf(tmp_path):
    path = tmp_path / "tiny.cnf"
    path.write_text(TINY_CNF, encoding="utf-8")
    return str(path)


def _run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSimulateCommand:
    def test_happy_path_prints_all_sections(self, capsys, tiny_cnf):
        code, out, err = _run(
            capsys, ["simulate", tiny_cnf, "--shots", "300", "--seed", "3"]
        )
        assert code == 0
        assert "sampled EPS:" in out
        assert "95% CI" in out
        assert "analytic EPS:" in out
        assert "approximation ratio:" in out
        assert "top counts" in out
        assert "compiled tiny for fpqa" in err
        assert "simulated 300 shots" in err

    def test_same_seed_is_bit_identical(self, capsys, tiny_cnf):
        argv = ["simulate", tiny_cnf, "--shots", "250", "--seed", "9"]
        _, first, _ = _run(capsys, argv)
        _, second, _ = _run(capsys, argv)
        assert first == second
        _, other, _ = _run(
            capsys, ["simulate", tiny_cnf, "--shots", "250", "--seed", "10"]
        )
        assert other != first

    def test_no_noise_flag(self, capsys, tiny_cnf):
        code, out, _ = _run(
            capsys, ["simulate", tiny_cnf, "--shots", "100", "--no-noise"]
        )
        assert code == 0
        assert "noise: off" in out
        assert "sampled EPS: 1 " in out

    def test_json_output_parses(self, capsys, tiny_cnf):
        code, out, _ = _run(
            capsys, ["simulate", tiny_cnf, "--shots", "120", "--json"]
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["shots"] == 120
        assert payload["eps_sampled"] is not None
        assert sum(payload["counts"].values()) == 120

    def test_device_selection(self, capsys, tiny_cnf):
        code, out, err = _run(
            capsys,
            ["simulate", tiny_cnf, "--device", "rubidium-nextgen", "--shots", "50"],
        )
        assert code == 0
        assert "on rubidium-nextgen" in err

    def test_missing_input_is_user_error(self, capsys):
        code, _, err = _run(capsys, ["simulate", "/does/not/exist.cnf"])
        assert code == 2
        assert "error:" in err

    def test_bad_satlib_name_is_user_error(self, capsys):
        code, _, err = _run(capsys, ["simulate", "uf19-01", "--shots", "10"])
        assert code == 2
        assert "error:" in err

    def test_unknown_device_is_user_error(self, capsys, tiny_cnf):
        code, _, err = _run(
            capsys, ["simulate", tiny_cnf, "--device", "pixie-dust"]
        )
        assert code == 2


@pytest.mark.slow
class TestAcceptanceCommand:
    """The ISSUE acceptance bar, exact flags, run twice."""

    ARGV = [
        "simulate",
        "--target", "fpqa",
        "--device", "rubidium-baseline",
        "uf20-01",
        "--shots", "2000",
        "--seed", "7",
    ]

    def test_prints_counts_eps_ci_and_ratio_bit_identically(self, capsys):
        code, first, err = _run(capsys, self.ARGV)
        assert code == 0
        assert "top counts" in first
        assert "sampled EPS:" in first and "95% CI" in first
        assert "approximation ratio:" in first
        assert "on rubidium-baseline" in err
        code, second, _ = _run(capsys, self.ARGV)
        assert code == 0
        assert first == second

        # The sampled estimate brackets the analytic model: parse the
        # CI and the analytic line back out of the human output.
        lines = {
            line.split(":")[0]: line for line in first.splitlines() if ":" in line
        }
        ci_text = lines["sampled EPS"].split("95% CI ")[1].split(",")[0]
        low, high = (float(part) for part in ci_text.split("-"))
        analytic = float(lines["analytic EPS"].split(": ")[1])
        assert low <= analytic <= high
