"""Unit and property tests for conflict graphs and DSatur (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import (
    ConflictGraph,
    clause_conflict_graph,
    dsatur_coloring,
    greedy_sequential_coloring,
    validate_coloring,
)
from repro.coloring.dsatur import color_classes
from repro.exceptions import ColoringError
from repro.sat import CnfFormula, random_ksat
from repro.sat.cnf import Clause


class TestConflictGraph:
    def test_paper_example(self):
        # Algorithm 1's example: [[-1,-2,-3],[4,-5,6],[3,5,-6]] -> colors [0,0,1].
        formula = CnfFormula.from_lists(
            [[-1, -2, -3], [4, -5, 6], [3, 5, -6]], num_vars=6
        )
        graph = clause_conflict_graph(formula)
        assert graph.has_edge(0, 2)  # share variable 3
        assert graph.has_edge(1, 2)  # share variables 5, 6
        assert not graph.has_edge(0, 1)

    def test_self_loop_rejected(self):
        graph = ConflictGraph(2)
        with pytest.raises(ColoringError):
            graph.add_edge(1, 1)

    def test_out_of_range_edge_rejected(self):
        graph = ConflictGraph(2)
        with pytest.raises(ColoringError):
            graph.add_edge(0, 5)

    def test_num_edges(self):
        graph = ConflictGraph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert graph.num_edges == 2
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_degree_and_max_degree(self):
        graph = ConflictGraph(3)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        assert graph.degree(0) == 2
        assert graph.max_degree() == 2

    def test_conflict_graph_from_clause_list(self):
        clauses = [Clause((1, 2)), Clause((2, 3)), Clause((4,))]
        graph = clause_conflict_graph(clauses)
        assert graph.has_edge(0, 1)
        assert graph.degree(2) == 0


class TestDSatur:
    def test_paper_example_two_colors(self):
        formula = CnfFormula.from_lists(
            [[-1, -2, -3], [4, -5, 6], [3, 5, -6]], num_vars=6
        )
        colors = dsatur_coloring(clause_conflict_graph(formula))
        validate_coloring(clause_conflict_graph(formula), colors)
        assert max(colors) + 1 == 2
        assert colors[0] == colors[1]  # the two independent clauses share a color

    def test_empty_graph(self):
        assert dsatur_coloring(ConflictGraph(0)) == []

    def test_isolated_nodes_one_color(self):
        colors = dsatur_coloring(ConflictGraph(5))
        assert set(colors) == {0}

    def test_complete_graph_needs_n_colors(self):
        graph = ConflictGraph(4)
        for i in range(4):
            for j in range(i + 1, 4):
                graph.add_edge(i, j)
        colors = dsatur_coloring(graph)
        assert len(set(colors)) == 4

    def test_bipartite_graph_two_colors(self):
        # DSatur is exact on bipartite graphs.
        graph = ConflictGraph(6)
        for i in (0, 1, 2):
            for j in (3, 4, 5):
                graph.add_edge(i, j)
        assert len(set(dsatur_coloring(graph))) == 2

    def test_odd_cycle_three_colors(self):
        graph = ConflictGraph(5)
        for i in range(5):
            graph.add_edge(i, (i + 1) % 5)
        assert len(set(dsatur_coloring(graph))) == 3

    def test_dsatur_no_worse_than_greedy_on_random(self):
        formula = random_ksat(20, 91, seed=8)
        graph = clause_conflict_graph(formula)
        dsatur = len(set(dsatur_coloring(graph)))
        greedy = len(set(greedy_sequential_coloring(graph)))
        assert dsatur <= greedy + 1

    def test_color_classes_partition(self):
        colors = [0, 1, 0, 2]
        classes = color_classes(colors)
        assert classes == [[0, 2], [1], [3]]

    def test_validate_rejects_bad_coloring(self):
        graph = ConflictGraph(2)
        graph.add_edge(0, 1)
        with pytest.raises(ColoringError):
            validate_coloring(graph, [0, 0])

    def test_validate_rejects_uncolored(self):
        with pytest.raises(ColoringError):
            validate_coloring(ConflictGraph(1), [-1])

    def test_validate_rejects_length_mismatch(self):
        with pytest.raises(ColoringError):
            validate_coloring(ConflictGraph(2), [0])


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**6), st.integers(5, 14), st.integers(5, 30))
def test_dsatur_always_proper_on_random_formulas(seed, num_vars, num_clauses):
    """Property: DSatur colorings are always proper colorings."""
    formula = random_ksat(num_vars, num_clauses, k=3, seed=seed)
    graph = clause_conflict_graph(formula)
    colors = dsatur_coloring(graph)
    validate_coloring(graph, colors)
    # Same-color clauses must be variable-disjoint (the Weaver invariant).
    for color in set(colors):
        seen: set[int] = set()
        for idx, c in enumerate(colors):
            if c != color:
                continue
            variables = formula.clauses[idx].variables
            assert not (seen & variables)
            seen |= variables
