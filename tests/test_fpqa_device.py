"""Tests for the FPQA device state machine and hardware model (Table 1)."""

import math

import pytest

from repro.exceptions import FPQAConstraintError
from repro.fpqa import (
    AodInit,
    BindAtom,
    FPQADevice,
    FPQAHardwareParams,
    ParallelShuttle,
    RamanGlobal,
    RamanLocal,
    RydbergPulse,
    Shuttle,
    ShuttleMove,
    SlmInit,
    Transfer,
    instruction_duration_us,
)


@pytest.fixture
def hw() -> FPQAHardwareParams:
    return FPQAHardwareParams()


@pytest.fixture
def device(hw) -> FPQADevice:
    dev = FPQADevice(hw)
    dev.apply(SlmInit(((0.0, 0.0), (20.0, 0.0), (40.0, 0.0))))
    dev.apply(AodInit((100.0, 120.0), (50.0,)))
    return dev


class TestHardwareParams:
    def test_defaults_valid(self):
        FPQAHardwareParams()

    def test_negative_spacing_rejected(self):
        with pytest.raises(FPQAConstraintError):
            FPQAHardwareParams(min_trap_spacing_um=-1.0)

    def test_radius_below_spacing_rejected(self):
        with pytest.raises(FPQAConstraintError):
            FPQAHardwareParams(min_trap_spacing_um=5.0, rydberg_radius_um=4.0)

    def test_fidelity_range_checked(self):
        with pytest.raises(FPQAConstraintError):
            FPQAHardwareParams(fidelity_cz=1.5)

    def test_with_overrides(self, hw):
        changed = hw.with_overrides(fidelity_ccz=0.99)
        assert changed.fidelity_ccz == 0.99
        assert hw.fidelity_ccz == 0.98  # original untouched

    def test_cluster_fidelity_by_size(self, hw):
        assert hw.cluster_fidelity(2) == hw.fidelity_cz
        assert hw.cluster_fidelity(3) == hw.fidelity_ccz
        assert hw.cluster_fidelity(4) == pytest.approx(hw.fidelity_ccz**2)

    def test_loaded_move_uses_acceleration_model(self, hw):
        expected = 2.0 * math.sqrt(100.0 / hw.aod_acceleration_um_per_us2)
        assert hw.shuttle_duration_us(100.0, loaded=True) == pytest.approx(
            expected + hw.shuttle_settle_us
        )

    def test_empty_move_is_fast(self, hw):
        assert hw.shuttle_duration_us(100.0, loaded=False) < hw.shuttle_duration_us(
            100.0, loaded=True
        )


class TestLayerInit:
    def test_slm_spacing_enforced(self, hw):
        dev = FPQADevice(hw)
        with pytest.raises(FPQAConstraintError):
            dev.apply(SlmInit(((0.0, 0.0), (2.0, 0.0))))

    def test_slm_double_init_rejected(self, device):
        with pytest.raises(FPQAConstraintError):
            device.apply(SlmInit(((0.0, 100.0),)))

    def test_aod_requires_increasing_coordinates(self, hw):
        dev = FPQADevice(hw)
        with pytest.raises(FPQAConstraintError):
            dev.apply(AodInit((10.0, 5.0), (0.0,)))

    def test_aod_min_gap_enforced(self, hw):
        dev = FPQADevice(hw)
        with pytest.raises(FPQAConstraintError):
            dev.apply(AodInit((0.0, 2.0), (0.0,)))


class TestBindAndTransfer:
    def test_bind_to_slm(self, device):
        device.apply(BindAtom(qubit=0, slm_index=1))
        assert device.qubit_position(0) == (20.0, 0.0)

    def test_bind_same_qubit_twice_rejected(self, device):
        device.apply(BindAtom(qubit=0, slm_index=0))
        with pytest.raises(FPQAConstraintError):
            device.apply(BindAtom(qubit=0, slm_index=1))

    def test_bind_occupied_trap_rejected(self, device):
        device.apply(BindAtom(qubit=0, slm_index=0))
        with pytest.raises(FPQAConstraintError):
            device.apply(BindAtom(qubit=1, slm_index=0))

    def test_bind_to_aod_crossing(self, device):
        device.apply(BindAtom(qubit=3, aod_col=0, aod_row=0))
        assert device.qubit_position(3) == (100.0, 50.0)

    def test_bind_requires_exactly_one_target(self):
        with pytest.raises(FPQAConstraintError):
            BindAtom(qubit=0)
        with pytest.raises(FPQAConstraintError):
            BindAtom(qubit=0, slm_index=1, aod_col=0, aod_row=0)

    def test_transfer_requires_proximity(self, device):
        device.apply(BindAtom(qubit=0, slm_index=0))
        with pytest.raises(FPQAConstraintError):
            device.apply(Transfer(slm_index=0, aod_col=0, aod_row=0))

    def test_transfer_roundtrip(self, device):
        device.apply(BindAtom(qubit=0, slm_index=0))
        # Align the AOD crossing over the trap, then lift and drop.
        device.apply(Shuttle(ShuttleMove("column", 0, -100.0)))
        device.apply(Shuttle(ShuttleMove("row", 0, -50.0)))
        device.apply(Transfer(slm_index=0, aod_col=0, aod_row=0))
        assert device.qubit_location[0] == ("aod", 0, 0)
        device.apply(Transfer(slm_index=0, aod_col=0, aod_row=0))
        assert device.qubit_location[0] == ("slm", 0)

    def test_transfer_both_empty_rejected(self, device):
        device.apply(Shuttle(ShuttleMove("column", 0, -100.0)))
        device.apply(Shuttle(ShuttleMove("row", 0, -50.0)))
        with pytest.raises(FPQAConstraintError):
            device.apply(Transfer(slm_index=0, aod_col=0, aod_row=0))


class TestShuttling:
    def test_columns_cannot_cross(self, device):
        with pytest.raises(FPQAConstraintError):
            device.apply(Shuttle(ShuttleMove("column", 0, 30.0)))

    def test_columns_cannot_crowd(self, device):
        with pytest.raises(FPQAConstraintError):
            device.apply(Shuttle(ShuttleMove("column", 0, 18.0)))

    def test_parallel_shuttle_atomic_validation(self, device):
        # Moving both columns together by the same offset keeps order.
        device.apply(
            ParallelShuttle(
                (ShuttleMove("column", 0, 30.0), ShuttleMove("column", 1, 30.0))
            )
        )
        assert device.aod_col_x == [130.0, 150.0]

    def test_parallel_shuttle_rejects_duplicate_target(self):
        with pytest.raises(FPQAConstraintError):
            ParallelShuttle(
                (ShuttleMove("row", 0, 1.0), ShuttleMove("row", 0, 2.0))
            )

    def test_shuttle_out_of_range_index(self, device):
        with pytest.raises(FPQAConstraintError):
            device.apply(Shuttle(ShuttleMove("row", 5, 1.0)))

    def test_bad_axis_rejected(self):
        with pytest.raises(FPQAConstraintError):
            ShuttleMove("diagonal", 0, 1.0)


class TestRydberg:
    def test_pair_within_radius_clusters(self, hw):
        dev = FPQADevice(hw)
        dev.apply(SlmInit(((0.0, 0.0), (6.0, 0.0), (100.0, 0.0))))
        for qubit, idx in enumerate(range(3)):
            dev.apply(BindAtom(qubit=qubit, slm_index=idx))
        clusters = dev.apply(RydbergPulse())
        assert len(clusters) == 1
        assert clusters[0].qubits == (0, 1)

    def test_triangle_forms_ccz_cluster(self, hw):
        dev = FPQADevice(hw)
        side = 6.0
        height = side * math.sqrt(3) / 2
        dev.apply(
            SlmInit(((0.0, 0.0), (side, 0.0), (side / 2, height)))
        )
        for qubit in range(3):
            dev.apply(BindAtom(qubit=qubit, slm_index=qubit))
        clusters = dev.apply(RydbergPulse())
        assert len(clusters) == 1
        assert clusters[0].size == 3

    def test_non_equidistant_triple_rejected(self, hw):
        dev = FPQADevice(hw)
        dev.apply(SlmInit(((0.0, 0.0), (6.0, 0.0), (12.5, 0.0))))
        for qubit in range(3):
            dev.apply(BindAtom(qubit=qubit, slm_index=qubit))
        with pytest.raises(FPQAConstraintError):
            dev.apply(RydbergPulse())

    def test_isolated_atoms_ignored(self, hw):
        dev = FPQADevice(hw)
        dev.apply(SlmInit(((0.0, 0.0), (50.0, 0.0))))
        dev.apply(BindAtom(qubit=0, slm_index=0))
        dev.apply(BindAtom(qubit=1, slm_index=1))
        assert dev.apply(RydbergPulse()) == []

    def test_empty_device_pulse(self, hw):
        assert FPQADevice(hw).apply(RydbergPulse()) == []


class TestRaman:
    def test_local_requires_bound_qubit(self, device):
        with pytest.raises(FPQAConstraintError):
            device.apply(RamanLocal(7, 0.1, 0.2, 0.3))

    def test_global_has_no_precondition(self, device):
        device.apply(RamanGlobal(0.1, 0.2, 0.3))


class TestDurations:
    def test_setup_instructions_are_free(self, hw):
        assert instruction_duration_us(SlmInit(((0.0, 0.0),)), hw) == 0.0
        assert instruction_duration_us(BindAtom(qubit=0, slm_index=0), hw) == 0.0

    def test_parallel_shuttle_costs_longest_member(self, hw):
        group = ParallelShuttle(
            (ShuttleMove("column", 0, 10.0), ShuttleMove("column", 1, 90.0))
        )
        single = Shuttle(ShuttleMove("column", 1, 90.0))
        assert instruction_duration_us(group, hw) == pytest.approx(
            instruction_duration_us(single, hw)
        )

    def test_pulse_durations(self, hw):
        assert instruction_duration_us(RydbergPulse(), hw) == hw.rydberg_pulse_duration_us
        assert (
            instruction_duration_us(RamanLocal(0, 0, 0, 0), hw)
            == hw.raman_local_duration_us
        )
        assert (
            instruction_duration_us(Transfer(0, 0, 0), hw) == hw.transfer_duration_us
        )
