"""repro.service: jobs, fair queue, artifact store, service, and socket.

Event-loop tests run through ``asyncio.run`` (no pytest-asyncio in the
toolchain); the service backend under test is ``inline``/``thread`` so
the suite stays in the fast lane.
"""

from __future__ import annotations

import asyncio
import json

import pytest

import repro
from repro.perf import Profiler
from repro.service import (
    ArtifactStore,
    CompilationService,
    CompileJob,
    FairQueue,
    ServiceClient,
    ServiceServer,
    artifact_key,
    serve,
    shard_key,
    submit_once,
)
from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode_line,
    payload_to_workload,
    workload_to_payload,
)
from repro.service.service import _shard_of
from repro.sat import CnfFormula
from repro.targets import Workload


def _formula(name: str = "svc", seed: int = 0) -> CnfFormula:
    clauses = [[1, -2, 3], [-1, 2, 4], [2, 3, -4], [1, 2, -3], [-2, -3, 4]]
    return CnfFormula.from_lists(
        clauses[: 2 + (seed % 4)], num_vars=4, name=name
    )


def _job(client: str, priority: int = 0, name: str = "w") -> CompileJob:
    return CompileJob(
        workload=Workload.from_formula(_formula(name)),
        target="fpqa",
        client=client,
        priority=priority,
    )


# ----------------------------------------------------------------------
# FairQueue
# ----------------------------------------------------------------------
class TestFairQueue:
    def test_priority_orders_before_fairness(self):
        async def run():
            queue = FairQueue()
            low = _job("a", priority=5)
            high = _job("b", priority=0)
            queue.put_nowait(low)
            queue.put_nowait(high)
            assert (await queue.get()) is high
            assert (await queue.get()) is low

        asyncio.run(run())

    def test_round_robin_across_clients(self):
        """A flood from one tenant cannot starve another's single job."""

        async def run():
            queue = FairQueue()
            flood = [_job("hog") for _ in range(10)]
            for job in flood:
                queue.put_nowait(job)
            single = _job("mouse")
            queue.put_nowait(single)
            first = await queue.get()
            second = await queue.get()
            assert first is flood[0]
            assert second is single  # round-robin: mouse gets the next slot

        asyncio.run(run())

    def test_fifo_within_client(self):
        async def run():
            queue = FairQueue()
            jobs = [_job("a") for _ in range(3)]
            for job in jobs:
                queue.put_nowait(job)
            served = [await queue.get() for _ in range(3)]
            assert served == jobs

        asyncio.run(run())

    def test_get_waits_for_put(self):
        async def run():
            queue = FairQueue()
            getter = asyncio.create_task(queue.get())
            await asyncio.sleep(0.01)
            assert not getter.done()
            job = _job("a")
            queue.put_nowait(job)
            assert (await asyncio.wait_for(getter, 5)) is job

        asyncio.run(run())

    def test_drain_empties_queue(self):
        async def run():
            queue = FairQueue()
            for _ in range(4):
                queue.put_nowait(_job("a"))
            assert len(queue.drain()) == 4
            assert len(queue) == 0

        asyncio.run(run())


# ----------------------------------------------------------------------
# ArtifactStore + content addressing
# ----------------------------------------------------------------------
class TestArtifactKey:
    def test_same_content_different_name_shares_key(self):
        a = Workload.from_formula(_formula("alpha"))
        b = Workload.from_formula(_formula("beta"))
        assert artifact_key(a, "fpqa") == artifact_key(b, "fpqa")

    def test_every_input_dimension_changes_key(self):
        w = Workload.from_formula(_formula())
        base = artifact_key(w, "fpqa")
        assert artifact_key(w, "superconducting") != base
        assert artifact_key(w, "fpqa", device="aquila-256") != base
        assert artifact_key(w, "fpqa", options={"compression": False}) != base
        assert artifact_key(w, "fpqa", budget=1.0) != base
        assert (
            artifact_key(w, "fpqa", parameters=repro.QaoaParameters((0.1,), (0.2,)))
            != base
        )

    def test_different_content_changes_key(self):
        a = Workload.from_formula(_formula("x", seed=0))
        b = Workload.from_formula(_formula("x", seed=1))
        assert artifact_key(a, "fpqa") != artifact_key(b, "fpqa")


class TestArtifactStore:
    def _result(self, tiny_formula) -> repro.CompilationResult:
        return repro.compile(tiny_formula, target="fpqa")

    def test_round_trip_and_counters(self, tiny_formula):
        store = ArtifactStore(max_entries=4)
        key = "k" * 64
        assert store.get(key) is None
        result = self._result(tiny_formula)
        entry = store.put(key, result)
        back = store.get(key)
        assert back is not None and back.cached
        assert back.num_pulses == result.num_pulses
        assert store.get_bytes(key) == entry  # byte-identical artifact
        assert store.stats()["hits"] == 2
        assert store.stats()["misses"] == 1
        assert store.stats()["hit_rate"] == pytest.approx(2 / 3)

    def test_lru_eviction(self, tiny_formula):
        store = ArtifactStore(max_entries=2)
        result = self._result(tiny_formula)
        store.put("a", result)
        store.put("b", result)
        assert store.get("a") is not None  # refresh a; b is now LRU
        store.put("c", result)
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.stats()["evictions"] == 1

    def test_error_rows_not_stored(self, tiny_formula):
        store = ArtifactStore()
        row = repro.CompilationResult(
            target="fpqa", workload="w", num_qubits=4, error="boom"
        )
        store.put("k", row)
        assert len(store) == 0

    def test_disk_tier_survives_restart(self, tmp_path, tiny_formula):
        result = self._result(tiny_formula)
        first = ArtifactStore(directory=tmp_path / "artifacts")
        entry = first.put("deadbeef", result)
        reborn = ArtifactStore(directory=tmp_path / "artifacts")
        assert reborn.get_bytes("deadbeef") == entry
        assert reborn.stats()["hits"] == 1

    def test_corrupt_disk_entry_is_miss_and_purged(self, tmp_path):
        directory = tmp_path / "artifacts"
        directory.mkdir()
        (directory / "bad.json").write_text("{not json", encoding="utf-8")
        store = ArtifactStore(directory=directory)
        assert store.get_bytes("bad") is None
        assert store.stats()["misses"] == 1
        # The junk file is gone: later probes cannot keep re-reading it.
        assert not (directory / "bad.json").exists()

    def test_stale_schema_artifact_is_miss_not_hit(self, tmp_path):
        """An artifact from an older schema must count as a miss, be
        purged from every tier, and never inflate the hit rate."""
        directory = tmp_path / "artifacts"
        directory.mkdir()
        stale = json.dumps({"schema": 9999, "target": "fpqa", "workload": "w"})
        (directory / ("s" * 64 + ".json")).write_text(stale, encoding="utf-8")
        store = ArtifactStore(directory=directory)
        assert store.get("s" * 64) is None
        assert store.stats()["hits"] == 0
        assert store.stats()["misses"] == 1
        assert not (directory / ("s" * 64 + ".json")).exists()
        # Second probe: a plain miss, not a resurrected stale entry.
        assert store.get("s" * 64) is None
        assert store.stats()["misses"] == 2

    def test_profiler_mirrors_counters(self, tiny_formula):
        profiler = Profiler()
        store = ArtifactStore(profiler=profiler)
        store.get("nope")
        store.put("k", self._result(tiny_formula))
        store.get("k")
        assert profiler.caches["service.artifacts"] == [1, 1]

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_entries=0)


# ----------------------------------------------------------------------
# Shard routing
# ----------------------------------------------------------------------
class TestSharding:
    def test_same_cell_same_shard(self):
        key = shard_key("fpqa", "aquila-256")
        assert _shard_of(key, 4) == _shard_of(key, 4)

    def test_device_distinguishes_cells(self):
        assert shard_key("fpqa") != shard_key("fpqa", "aquila-256")
        assert shard_key("fpqa") != shard_key("superconducting")

    def test_routing_is_stable_across_processes(self):
        # crc32, not hash(): no PYTHONHASHSEED dependence.
        assert _shard_of(shard_key("fpqa"), 8) == _shard_of(shard_key("fpqa"), 8)

    def test_service_routes_same_cell_to_same_shard(self):
        async def run():
            async with CompilationService(shards=3, backend="inline") as service:
                a = await service.submit(_formula("a"), target="fpqa")
                b = await service.submit(_formula("b", seed=1), target="fpqa")
                await service.gather([a, b])
                assert a.shard == b.shard

        asyncio.run(run())


# ----------------------------------------------------------------------
# CompilationService
# ----------------------------------------------------------------------
class TestCompilationService:
    def test_submit_and_gather_in_order(self):
        async def run():
            async with CompilationService(shards=2, backend="thread") as service:
                jobs = await service.submit_many(
                    [_formula("a"), _formula("b", seed=1)],
                    targets=["fpqa", "atomique"],
                )
                results = await service.gather(jobs)
                assert [(r.workload, r.target) for r in results] == [
                    ("a", "fpqa"),
                    ("a", "atomique"),
                    ("b", "fpqa"),
                    ("b", "atomique"),
                ]
                assert all(r.succeeded for r in results)

        asyncio.run(run())

    def test_warm_store_hit_is_instant_and_byte_identical(self):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                first = await service.submit(_formula(), target="fpqa")
                await first
                again = await service.submit(_formula(), target="fpqa")
                result = await again
                assert again.from_cache
                assert result.cached
                assert again.status.value == "done"
                raw_first = service.store.get_bytes(first.key)
                raw_again = service.store.get_bytes(again.key)
                assert raw_first == raw_again
                assert service.store.stats()["hits"] >= 1

        asyncio.run(run())

    def test_inflight_dedup_compiles_once(self):
        async def run():
            async with CompilationService(shards=1, backend="thread") as service:
                jobs = [
                    await service.submit(_formula(), target="fpqa")
                    for _ in range(4)
                ]
                results = await service.gather(jobs)
                assert [j.from_cache for j in jobs[1:]] == [True] * 3
                assert len({id(r) for r in results}) <= 2
                stats = service.stats()
                assert stats["profile"]["caches"]["service.inflight"]["hits"] == 3
                # Only one actual compilation hit the store.
                assert stats["artifacts"]["entries"] == 1

        asyncio.run(run())

    def test_failures_become_result_rows(self, tiny_formula):
        async def run():
            circuit = repro.qaoa_circuit(tiny_formula, measure=False)
            async with CompilationService(shards=1, backend="inline") as service:
                job = await service.submit(circuit, target="atomique")
                result = await job
                assert not result.succeeded
                assert "WorkloadError" in result.error
                # Error rows are never stored as artifacts.
                assert service.store.stats()["entries"] == 0

        asyncio.run(run())

    def test_timeout_becomes_timed_out_row(self):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                job = await service.submit(_formula(), target="fpqa", timeout=1e-9)
                result = await job
                assert result.timed_out and not result.succeeded

        asyncio.run(run())

    def test_per_target_budgets_apply(self):
        async def run():
            async with CompilationService(
                shards=1, backend="inline", budgets={"fpqa": 1e-9}
            ) as service:
                strangled = await service.submit(_formula(), target="fpqa")
                assert (await strangled).timed_out
                fine = await service.submit(_formula(), target="atomique")
                assert (await fine).succeeded

        asyncio.run(run())

    def test_progress_events(self):
        async def run():
            events: list[str] = []
            async with CompilationService(shards=1, backend="inline") as service:
                job = await service.submit(
                    _formula(),
                    target="fpqa",
                    on_progress=lambda j, e: events.append(e),
                )
                await job
                assert events == ["queued", "started", "done"]
                cached_events: list[str] = []
                hit = await service.submit(
                    _formula(),
                    target="fpqa",
                    on_progress=lambda j, e: cached_events.append(e),
                )
                await hit
                assert cached_events == ["queued", "done"]

        asyncio.run(run())

    def test_progress_callback_errors_do_not_kill_jobs(self):
        async def run():
            def bomb(job, event):
                raise RuntimeError("observer bug")

            async with CompilationService(shards=1, backend="inline") as service:
                job = await service.submit(_formula(), target="fpqa", on_progress=bomb)
                assert (await job).succeeded

        asyncio.run(run())

    def test_unknown_target_rejected_at_submit(self):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                with pytest.raises(repro.UnknownTargetError):
                    await service.submit(_formula(), target="pixie")

        asyncio.run(run())

    def test_submit_requires_running_service(self):
        async def run():
            service = CompilationService(shards=1, backend="inline")
            with pytest.raises(repro.TargetError, match="not running"):
                await service.submit(_formula())

        asyncio.run(run())

    def test_stop_cancels_pending_jobs(self):
        async def run():
            service = CompilationService(shards=1, backend="thread")
            await service.start()
            jobs = [
                await service.submit(_formula(f"w{i}", seed=i), target="fpqa")
                for i in range(2)
            ]
            await service.stop()
            for job in jobs:
                result = await asyncio.wait_for(job.future, 5)
                assert result.succeeded or "ServiceStopped" in (result.error or "")

        asyncio.run(run())

    def test_stats_shape(self):
        async def run():
            async with CompilationService(shards=2, backend="inline") as service:
                await (await service.submit(_formula(), target="fpqa"))
                stats = service.stats()
                assert stats["shards"] == 2
                assert stats["jobs_submitted"] == 1
                assert stats["jobs_completed"] == 1
                assert sum(stats["jobs_per_shard"]) == 1
                assert "service.compile.fpqa" in stats["profile"]["primitives"]

        asyncio.run(run())

    def test_job_registry_is_bounded(self):
        """A long-lived server must not retain every finished job."""

        async def run():
            async with CompilationService(
                shards=1, backend="inline", max_tracked_jobs=2
            ) as service:
                jobs = [
                    await service.submit(_formula(f"j{i}", seed=i), target="fpqa")
                    for i in range(4)
                ]
                await service.gather(jobs)
                assert len(service._jobs) <= 2
                assert service.job(jobs[0].job_id) is None  # oldest forgotten
                assert service.job(jobs[-1].job_id) is jobs[-1]

        asyncio.run(run())

    def test_bad_configuration_rejected(self):
        with pytest.raises(repro.TargetError, match="shard"):
            CompilationService(shards=0)
        with pytest.raises(repro.TargetError, match="backend"):
            CompilationService(backend="carrier-pigeon")


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_line_round_trip(self):
        payload = {"op": "submit", "req": "r1", "options": {"measure": False}}
        assert decode_line(encode_line(payload)) == payload

    def test_decode_rejects_junk(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            decode_line(b"\xff\xfe\n")

    def test_workload_payload_round_trip_cnf(self):
        workload = Workload.from_formula(_formula("wire"))
        payload = workload_to_payload(workload)
        assert payload["kind"] == "cnf"
        back = payload_to_workload(payload)
        assert back.name == "wire"
        assert back.num_clauses == workload.num_clauses

    def test_workload_payload_round_trip_qasm(self, tiny_formula):
        circuit = repro.qaoa_circuit(tiny_formula, measure=False)
        payload = workload_to_payload(Workload.from_circuit(circuit, name="q"))
        assert payload["kind"] == "qasm"
        back = payload_to_workload(payload)
        assert back.raw_circuit.num_qubits == circuit.num_qubits

    def test_bad_payloads_raise_user_errors(self):
        with pytest.raises(ProtocolError):
            payload_to_workload({"kind": "midi", "text": "x"})
        with pytest.raises(ProtocolError):
            payload_to_workload({"kind": "cnf"})
        with pytest.raises(repro.WorkloadError):
            payload_to_workload({"kind": "cnf", "text": "p cnf garbage"})


# ----------------------------------------------------------------------
# Socket server + client
# ----------------------------------------------------------------------
class TestServer:
    def _socket(self, tmp_path):
        return tmp_path / "weaver.sock"

    def test_ping_stats_jobs(self, tmp_path):
        async def run():
            service = CompilationService(shards=1, backend="inline")
            async with ServiceServer(service, self._socket(tmp_path)):
                async with await ServiceClient.connect(self._socket(tmp_path)) as c:
                    pong = await c.ping()
                    assert pong["event"] == "pong"
                    out = await c.submit(_formula(), target="fpqa")
                    assert out.result.succeeded
                    stats = await c.stats()
                    assert stats["jobs_submitted"] == 1
                    jobs = await c.jobs()
                    assert jobs[0]["status"] == "done"

        asyncio.run(run())

    def test_warm_resubmission_byte_identical(self, tmp_path):
        async def run():
            service = CompilationService(shards=2, backend="thread")
            async with ServiceServer(service, self._socket(tmp_path)):
                async with await ServiceClient.connect(self._socket(tmp_path)) as c:
                    first = await c.submit(_formula(), target="fpqa")
                    second = await c.submit(_formula(), target="fpqa")
                    assert not first.from_cache
                    assert second.from_cache
                    assert json.dumps(first.raw, sort_keys=True) == json.dumps(
                        second.raw, sort_keys=True
                    )
                    assert second.events == ["queued", "done"]

        asyncio.run(run())

    def test_user_errors_surface_as_target_errors(self, tmp_path):
        async def run():
            service = CompilationService(shards=1, backend="inline")
            async with ServiceServer(service, self._socket(tmp_path)):
                async with await ServiceClient.connect(self._socket(tmp_path)) as c:
                    with pytest.raises(repro.TargetError, match="pixie"):
                        await c.submit(_formula(), target="pixie")
                    # The connection survives the error for further use.
                    assert (await c.submit(_formula(), target="fpqa")).result.succeeded

        asyncio.run(run())

    def test_junk_line_yields_error_event_not_crash(self, tmp_path):
        async def run():
            service = CompilationService(shards=1, backend="inline")
            async with ServiceServer(service, self._socket(tmp_path)):
                reader, writer = await asyncio.open_unix_connection(
                    path=str(self._socket(tmp_path))
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), 5)
                payload = decode_line(line)
                assert payload["event"] == "error"
                assert payload["kind"] == "user"
                writer.close()
                await writer.wait_closed()

        asyncio.run(run())

    def test_concurrent_submissions_multiplex(self, tmp_path):
        async def run():
            service = CompilationService(shards=2, backend="thread")
            async with ServiceServer(service, self._socket(tmp_path)):
                async with await ServiceClient.connect(self._socket(tmp_path)) as c:
                    outs = await asyncio.gather(
                        c.submit(_formula("a"), target="fpqa"),
                        c.submit(_formula("b", seed=1), target="atomique"),
                        c.submit(_formula("c", seed=2), target="fpqa", client="other"),
                    )
                    assert [o.result.workload for o in outs] == ["a", "b", "c"]
                    assert all(o.result.succeeded for o in outs)

        asyncio.run(run())

    def test_serve_stops_on_shutdown_op(self, tmp_path):
        async def run():
            ready = asyncio.Event()
            task = asyncio.create_task(
                serve(self._socket(tmp_path), shards=1, backend="inline", ready=ready)
            )
            await asyncio.wait_for(ready.wait(), 10)
            out = await submit_once(self._socket(tmp_path), _formula(), target="fpqa")
            assert out.result.succeeded
            client = await ServiceClient.connect(self._socket(tmp_path))
            await client.shutdown()
            await client.close()
            await asyncio.wait_for(task, 10)
            assert not self._socket(tmp_path).exists()

        asyncio.run(run())

    def test_connect_to_missing_socket_is_user_error(self, tmp_path):
        async def run():
            from repro.service import ServiceUnavailable

            with pytest.raises(ServiceUnavailable, match="weaver serve"):
                await ServiceClient.connect(tmp_path / "nope.sock")

        asyncio.run(run())
