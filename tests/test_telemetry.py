"""repro.telemetry: spans, metrics, exporters, and the instrumented stack.

Event-loop tests run through ``asyncio.run`` (no pytest-asyncio in the
toolchain) on the ``inline`` service backend; the one process-pool test
exercises the cross-process span stitch that
``CompilerSession.compile_many(parallel=...)`` ships spans through.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading

import numpy as np
import pytest

from repro.perf import Profiler
from repro.sat import CnfFormula
from repro.service import CompilationService, ServiceClient, ServiceServer
from repro.targets import CompilerSession, Workload
from repro.telemetry import (
    BASE,
    NOOP_SPAN,
    Histogram,
    MetricsRegistry,
    Tracer,
    adopt_context,
    bucket_index,
    chrome_trace,
    configure,
    current_context,
    current_tracer,
    format_metrics_table,
    format_trace_tree,
    prometheus_text,
    push_tracer,
    pop_tracer,
    read_spans_jsonl,
    span,
    span_context,
    spans_from_chrome_trace,
    tracing_enabled,
    validate_chrome_trace,
    write_spans_jsonl,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with global tracing disabled."""
    configure(False)
    yield
    configure(False)


def _formula(name: str = "tel", clauses: int = 5) -> CnfFormula:
    rows = [[1, -2, 3], [-1, 2, 4], [2, 3, -4], [1, 2, -3], [-2, -3, 4]]
    return CnfFormula.from_lists(rows[:clauses], num_vars=4, name=name)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_returns_shared_noop(self):
        assert not tracing_enabled()
        assert span("anything") is NOOP_SPAN
        assert span("other", key="val") is NOOP_SPAN
        assert current_tracer() is None
        assert current_context() is None

    def test_noop_span_is_reentrant(self):
        with span("a") as outer:
            outer.set_attribute("k", 1)
            with span("b") as inner:
                assert inner is outer is NOOP_SPAN

    def test_nesting_links_parents_and_orders_starts(self):
        tracer = configure(True)
        with span("a") as a:
            with span("b"):
                pass
            with span("c"):
                pass
        spans = {s["name"]: s for s in tracer.export()}
        assert set(spans) == {"a", "b", "c"}
        assert spans["b"]["parent"] == spans["a"]["span"] == a.span_id
        assert spans["c"]["parent"] == spans["a"]["span"]
        assert len({s["trace"] for s in spans.values()}) == 1
        assert spans["a"]["start"] <= spans["b"]["start"] <= spans["c"]["start"]
        # Children finish before the parent's context manager exits.
        assert spans["b"]["end"] <= spans["a"]["end"]
        assert all(s["end"] >= s["start"] for s in spans.values())

    def test_attributes_and_error_marker(self):
        tracer = configure(True)
        with pytest.raises(RuntimeError):
            with span("boom", stage="test"):
                raise RuntimeError("nope")
        (record,) = tracer.export()
        assert record["attrs"]["stage"] == "test"
        assert record["attrs"]["error"] == "RuntimeError"

    def test_sibling_roots_get_distinct_traces(self):
        tracer = configure(True)
        with span("first"):
            pass
        with span("second"):
            pass
        first, second = tracer.export()
        assert first["trace"] != second["trace"]
        assert first["parent"] is None and second["parent"] is None

    def test_record_backdates_completed_work(self):
        tracer = configure(True)
        tracer.record("pass", seconds=0.25)
        tracer.record("window", start=10.0, end=12.5)
        by_name = {s["name"]: s for s in tracer.export()}
        assert by_name["pass"]["end"] - by_name["pass"]["start"] == pytest.approx(0.25)
        assert by_name["window"]["start"] == 10.0
        assert by_name["window"]["end"] == 12.5

    def test_max_spans_bounds_memory_and_counts_drops(self):
        tracer = configure(True, max_spans=3)
        for i in range(5):
            with span(f"s{i}"):
                pass
        assert len(tracer.export()) == 3
        assert tracer.dropped == 2

    def test_explicit_start_finish_skips_ambient(self):
        tracer = configure(True)
        job = tracer.start("job")
        # An explicitly-managed span must not become the ambient parent.
        with span("unrelated"):
            pass
        job.set_attribute("status", "done")
        job.finish()
        by_name = {s["name"]: s for s in tracer.export()}
        assert by_name["unrelated"]["parent"] is None
        assert by_name["job"]["attrs"]["status"] == "done"

    def test_threads_keep_separate_ambient_chains(self):
        tracer = configure(True)
        barrier = threading.Barrier(2)

        def work(label: str) -> None:
            with span(label):
                barrier.wait(timeout=10)
                with span(f"{label}.child"):
                    pass

        threads = [threading.Thread(target=work, args=(n,)) for n in ("t1", "t2")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {s["name"]: s for s in tracer.export()}
        assert len(by_name) == 4
        for label in ("t1", "t2"):
            child, root = by_name[f"{label}.child"], by_name[label]
            assert child["parent"] == root["span"]
            assert child["trace"] == root["trace"]
        # Concurrent roots never share a trace; tids differ.
        assert by_name["t1"]["trace"] != by_name["t2"]["trace"]
        assert by_name["t1"]["tid"] != by_name["t2"]["tid"]

    def test_push_tracer_overrides_global(self):
        configure(True)
        local = Tracer()
        token = push_tracer(local)
        try:
            with span("scoped"):
                pass
        finally:
            pop_tracer(token)
        assert [s["name"] for s in local.export()] == ["scoped"]
        assert current_tracer().export() == []

    def test_adopt_context_parents_remote_spans(self):
        tracer = configure(True)
        ctx = {"trace": "aaaa", "span": "bbbb"}
        with adopt_context(ctx):
            with span("remote-child"):
                pass
        (record,) = tracer.export()
        assert record["trace"] == "aaaa"
        assert record["parent"] == "bbbb"

    def test_adopt_context_rejects_junk_quietly(self):
        tracer = configure(True)
        with adopt_context({"trace": 7, "span": None}):
            with span("orphan"):
                pass
        (record,) = tracer.export()
        assert record["parent"] is None

    def test_current_context_round_trips(self):
        configure(True)
        with span("root") as root:
            ctx = current_context()
        assert ctx == span_context(root)
        assert ctx == {"trace": root.trace_id, "span": root.span_id}

    def test_ingest_merges_foreign_dicts(self):
        tracer = configure(True)
        tracer.ingest([{"name": "w", "trace": "t", "span": "s", "parent": None,
                        "start": 0.0, "end": 1.0}, "junk", None])
        assert [s["name"] for s in tracer.export()] == ["w"]


class TestProcessPoolStitch:
    def test_compile_many_parallel_ships_spans_back(self):
        """One trace spans the session fan-out and its pool workers."""
        tracer = configure(True)
        session = CompilerSession()
        workloads = [
            Workload.from_formula(_formula("stitch-a")),
            Workload.from_formula(_formula("stitch-b", clauses=4)),
        ]
        results = session.compile_many(workloads, targets="fpqa", parallel=2)
        assert all(r.error is None for r in results)
        spans = tracer.export()
        by_name: dict[str, list] = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        (root,) = by_name["session.compile_many"]
        compile_spans = by_name["compile.fpqa"]
        assert len(compile_spans) == 2
        # Every span — including the workers' pass spans — shares the
        # fan-out's trace id, and the workers really were other processes.
        assert {s["trace"] for s in spans} == {root["trace"]}
        assert "codegen" in by_name and "clause-coloring" in by_name
        worker_pids = {s["pid"] for s in compile_spans}
        assert os.getpid() not in worker_pids
        # The stitched tree renders the cross-process hop.
        tree = format_trace_tree(spans)
        assert "session.compile_many" in tree
        assert "[pid" in tree


# ----------------------------------------------------------------------
# Histograms and the registry
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_index_tracks_exponential_bounds(self):
        for value in (0.001, 0.5, 1.0, 7.3, 1000.0):
            i = bucket_index(value)
            assert BASE**i <= value * 1.0000001
            assert value <= BASE ** (i + 1) * 1.0000001

    def test_quantiles_match_exact_percentiles(self):
        rng = np.random.default_rng(11)
        sample = rng.lognormal(mean=-2.0, sigma=1.2, size=4000)
        hist = Histogram()
        for value in sample:
            hist.observe(float(value))
        for q in (0.5, 0.9, 0.99):
            exact = float(np.percentile(sample, q * 100))
            approx = hist.quantile(q)
            # Bucket width is 2**0.25 per bucket: geometric midpoints
            # land within ~9% of any in-bucket value.
            assert approx == pytest.approx(exact, rel=0.2)

    def test_quantile_clamps_to_observed_range(self):
        hist = Histogram()
        for value in (0.010, 0.011, 0.012):
            hist.observe(value)
        assert 0.010 <= hist.quantile(0.0) <= 0.012
        assert 0.010 <= hist.quantile(1.0) <= 0.012

    def test_zeros_and_negatives_have_their_own_slot(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(-1.0)
        hist.observe(4.0)
        assert hist.zeros == 2
        assert hist.count == 3
        assert hist.quantile(0.0) == 0.0

    def test_empty_quantile_is_none(self):
        assert Histogram().quantile(0.5) is None

    def test_merge_equals_combined_stream(self):
        rng = np.random.default_rng(3)
        sample = rng.exponential(scale=0.05, size=600)
        combined, left, right = Histogram(), Histogram(), Histogram()
        for i, value in enumerate(sample):
            combined.observe(float(value))
            (left if i % 2 else right).observe(float(value))
        left.merge(right.to_dict())
        merged, direct = left.to_dict(), combined.to_dict()
        assert merged["count"] == direct["count"]
        assert merged["buckets"] == direct["buckets"]
        assert merged["min"] == direct["min"]
        assert merged["max"] == direct["max"]
        # Summation order differs between the two streams.
        assert merged["sum"] == pytest.approx(direct["sum"])
        assert merged["quantiles"] == direct["quantiles"]


class TestMetricsRegistry:
    def test_counters_gauges_and_labels(self):
        reg = MetricsRegistry()
        reg.inc("jobs")
        reg.inc("jobs", 2)
        reg.inc("jobs", kind="sim")
        reg.set_gauge("depth", 4)
        reg.set_gauge("depth", 2)
        assert reg.value("jobs") == 3
        assert reg.value("jobs", kind="sim") == 1
        assert reg.value("depth") == 2

    def test_histogram_series_expose_quantiles(self):
        reg = MetricsRegistry()
        for ms in range(1, 101):
            reg.observe("latency", ms / 1000.0, target="fpqa")
        p50 = reg.quantile("latency", 0.5, target="fpqa")
        p99 = reg.quantile("latency", 0.99, target="fpqa")
        assert 0.035 <= p50 <= 0.065
        assert 0.08 <= p99 <= 0.12
        payload = reg.to_dict()
        (series,) = payload["series"]
        assert series["labels"] == {"target": "fpqa"}
        assert set(series["quantiles"]) == {"p50", "p90", "p99"}
        assert series["count"] == 100

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("thing")
        with pytest.raises(ValueError):
            reg.observe("thing", 1.0)
        with pytest.raises(ValueError):
            reg.set_gauge("thing", 1.0)

    def test_merge_adds_counters_and_merges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("jobs", 2)
        b.inc("jobs", 3)
        b.set_gauge("depth", 9)
        a.observe("lat", 0.010)
        b.observe("lat", 0.020)
        a.merge(b.to_dict())
        assert a.value("jobs") == 5
        assert a.value("depth") == 9
        assert a.histogram("lat").count == 2

    def test_to_dict_round_trips_through_merge(self):
        reg = MetricsRegistry()
        reg.inc("n", 7, kind="x")
        reg.observe("h", 0.5)
        clone = MetricsRegistry()
        clone.merge(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_spans() -> list[dict]:
    tracer = configure(True)
    with span("outer", stage="demo"):
        with span("inner"):
            pass
    spans = tracer.export()
    configure(False)
    return spans


class TestExporters:
    def test_chrome_trace_is_valid_and_round_trips(self):
        spans = _sample_spans()
        payload = chrome_trace(spans)
        assert validate_chrome_trace(payload) == 2
        assert payload["displayTimeUnit"] == "ms"
        back = spans_from_chrome_trace(payload)
        assert {s["name"] for s in back} == {"outer", "inner"}
        by_name = {s["name"]: s for s in back}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]

    def test_chrome_trace_rebases_to_zero(self):
        payload = chrome_trace(_sample_spans())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in events) == 0

    def test_validate_rejects_junk(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "a", "ts": -5, "dur": 1,
                                  "pid": 1, "tid": 1}]}
            )
        with pytest.raises(ValueError):
            validate_chrome_trace([1, 2, 3])

    def test_jsonl_round_trip(self, tmp_path):
        spans = _sample_spans()
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(spans, path)
        assert read_spans_jsonl(path) == spans

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        reg.inc("service.jobs.submitted", 4, kind="sim")
        reg.set_gauge("service.queue.depth", 2)
        reg.observe("service.job_seconds", 0.05)
        text = prometheus_text(reg)
        assert "# TYPE weaver_service_jobs_submitted_total counter" in text
        assert 'weaver_service_jobs_submitted_total{kind="sim"} 4' in text
        assert "weaver_service_queue_depth 2" in text
        assert "# TYPE weaver_service_job_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "weaver_service_job_seconds_count 1" in text
        assert "weaver_service_job_seconds_sum" in text
        # Cumulative buckets: the +Inf bucket equals the count.
        for line in text.splitlines():
            if 'le="+Inf"' in line:
                assert line.rsplit(" ", 1)[1] == "1"

    def test_prometheus_accepts_snapshot_dict(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        assert prometheus_text(reg.to_dict()) == prometheus_text(reg)


class TestSummaries:
    def test_trace_tree_marks_errors_and_truncates(self):
        tracer = configure(True)
        with pytest.raises(ValueError):
            with span("root"):
                with span("bad"):
                    raise ValueError("x")
        tree = format_trace_tree(tracer.export())
        assert "root" in tree and "!ValueError" in tree
        many = [
            {"name": f"s{i}", "trace": "t", "span": str(i), "parent": None,
             "start": float(i), "end": float(i) + 0.5}
            for i in range(20)
        ]
        short = format_trace_tree(many, max_spans=5)
        assert "20 spans total" in short
        assert "s5" not in short

    def test_metrics_table_formats_quantiles(self):
        reg = MetricsRegistry()
        reg.inc("service.jobs.completed", 3)
        reg.observe("service.job_seconds", 0.004)
        reg.observe("service.job_seconds", 0.180)
        table = format_metrics_table(reg.to_dict())
        assert "service.jobs.completed" in table
        assert "p50" in table and "p99" in table
        assert "ms" in table


# ----------------------------------------------------------------------
# Profiler hook
# ----------------------------------------------------------------------
class TestProfilerHook:
    def test_add_pass_emits_span_under_ambient_parent(self):
        tracer = configure(True)
        profiler = Profiler()
        with span("compile.test") as parent:
            profiler.add_pass("codegen", 0.02)
        by_name = {s["name"]: s for s in tracer.export()}
        assert by_name["codegen"]["parent"] == parent.span_id
        assert by_name["codegen"]["end"] - by_name["codegen"]["start"] == (
            pytest.approx(0.02)
        )
        assert profiler.passes["codegen"] == pytest.approx(0.02)

    def test_add_pass_without_tracing_only_counts(self):
        profiler = Profiler()
        profiler.add_pass("codegen", 0.01)
        assert profiler.passes["codegen"] == pytest.approx(0.01)

    def test_merge_profile_never_emits_spans(self):
        tracer = configure(True)
        profiler = Profiler()
        profiler.merge_profile(
            {"passes": {"codegen": {"seconds": 0.5}},
             "primitives": {"rydberg": {"count": 3, "seconds": 0.1}},
             "caches": {"memo": {"hits": 2, "misses": 1}}}
        )
        assert tracer.export() == []
        assert profiler.passes["codegen"] == pytest.approx(0.5)
        assert profiler.primitives["rydberg"] == [3, pytest.approx(0.1)]
        assert profiler.caches["memo"] == [2, 1]


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------
class TestServiceTelemetry:
    def test_stats_carry_metric_histograms(self):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                for i in range(3):
                    await (await service.submit(_formula(f"m{i}"), target="fpqa"))
                return service.stats()

        stats = asyncio.run(run())
        metrics = stats["metrics"]
        series = {
            (s["name"], tuple(sorted(s["labels"].items()))): s
            for s in metrics["series"]
        }
        submitted = series[
            ("service.jobs.submitted", (("kind", "compile"), ("target", "fpqa")))
        ]
        assert submitted["value"] == 3
        job_hist = series[("service.job_seconds", (("kind", "compile"),))]
        assert job_hist["count"] == 3
        assert set(job_hist["quantiles"]) == {"p50", "p90", "p99"}
        assert ("service.queue.depth", ()) in series
        assert series[("service.artifacts.misses", ())]["value"] >= 1
        # The snapshot is JSON-safe (it rides the stats protocol op).
        json.dumps(stats)

    def test_worker_profile_merges_into_service_stats(self):
        """Pass counters from the executed compile reach fleet stats."""

        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                await (await service.submit(_formula("prof"), target="fpqa"))
                return service.stats()

        stats = asyncio.run(run())
        passes = stats["profile"]["passes"]
        assert "codegen" in passes
        assert passes["codegen"]["seconds"] > 0

    def test_cache_hits_skip_compile_metrics(self):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                await (await service.submit(_formula("c"), target="fpqa"))
                await (await service.submit(_formula("c"), target="fpqa"))
                return service.stats()

        stats = asyncio.run(run())
        series = {
            (s["name"], tuple(sorted(s["labels"].items()))): s
            for s in stats["metrics"]["series"]
        }
        # Both jobs complete, but only the first one compiled.
        job_hist = series[("service.job_seconds", (("kind", "compile"),))]
        assert job_hist["count"] == 2
        compile_hist = series[
            ("service.compile_seconds", (("device", "-"), ("target", "fpqa")))
        ]
        assert compile_hist["count"] == 1
        assert series[("service.artifacts.hits", ())]["value"] == 1

    def test_traced_job_produces_one_stitched_tree(self):
        """Acceptance: a service sim job traces queue -> worker -> sim."""

        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                job = await service.submit(
                    _formula("traced"), target="fpqa",
                    simulate={"shots": 60, "seed": 5},
                )
                result = await job
                assert result.error is None
                return job

        tracer = configure(True)
        job = asyncio.run(run())
        spans = tracer.export()
        configure(False)
        by_name = {s["name"]: s for s in spans}
        for expected in (
            "service.job.sim", "service.queue.wait", "service.artifact.lookup",
            "service.execute", "compile.fpqa", "sim.run",
            "service.artifact.store",
        ):
            assert expected in by_name, f"missing span {expected}"
        root = by_name["service.job.sim"]
        assert {s["trace"] for s in spans} == {root["trace"]}
        assert root["attrs"]["status"] == "done"
        assert by_name["service.queue.wait"]["parent"] == root["span"]
        assert by_name["compile.fpqa"]["parent"] == by_name["service.execute"]["span"]
        assert by_name["sim.run"]["start"] >= by_name["compile.fpqa"]["start"]
        assert job.trace_id == root["trace"]
        # The recording is a valid Chrome trace.
        assert validate_chrome_trace(chrome_trace(spans)) == len(spans)

    def test_trace_id_round_trips_over_the_socket(self, tmp_path):
        """A client span context reaches the server job and echoes back."""
        socket_path = tmp_path / "tel.sock"

        async def run():
            service = CompilationService(shards=1, backend="inline")
            async with ServiceServer(service, socket_path):
                async with await ServiceClient.connect(socket_path) as client:
                    with span("client.request") as root:
                        out = await client.submit(_formula("wire"), target="fpqa")
                    return root.trace_id, out, service.stats()

        tracer = configure(True)
        client_trace, out, stats = asyncio.run(run())
        spans = tracer.export()
        configure(False)
        assert out.result.error is None
        # The done event echoed the client's trace id...
        assert out.trace == client_trace
        # ...and the server-side job spans joined the client's trace.
        by_name = {s["name"]: s for s in spans}
        job_span = by_name["service.job.compile"]
        assert job_span["trace"] == client_trace
        assert job_span["parent"] == by_name["client.request"]["span"]
        json.dumps(stats)

    def test_untraced_submission_reports_no_trace(self):
        async def run():
            async with CompilationService(shards=1, backend="inline") as service:
                job = await service.submit(_formula("plain"), target="fpqa")
                await job
                return job

        job = asyncio.run(run())
        assert job.trace_id is None
        assert job.describe()["trace"] is None
