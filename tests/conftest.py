"""Shared fixtures: small formulas and cached compilations.

Compilation results are session-scoped because the Weaver pipeline is
deterministic; tests only read them.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.passes import compile_formula  # noqa: E402
from repro.sat import CnfFormula, satlib_instance  # noqa: E402


@pytest.fixture(scope="session")
def paper_formula() -> CnfFormula:
    """The running example of Figure 5 / Algorithm 1."""
    return CnfFormula.from_lists(
        [[-1, -2, -3], [4, -5, 6], [3, 5, -6]], num_vars=6, name="paper-example"
    )


@pytest.fixture(scope="session")
def mixed_formula() -> CnfFormula:
    """3-, 2-, and 1-literal clauses together."""
    return CnfFormula.from_lists(
        [[1, 2, 3], [-2, 4], [5], [-1, -4, -5], [3, -5]], num_vars=5, name="mixed"
    )


@pytest.fixture(scope="session")
def tiny_formula() -> CnfFormula:
    return CnfFormula.from_lists([[1, -2, 3], [-1, 2, 4]], num_vars=4, name="tiny")


@pytest.fixture(scope="session")
def uf20() -> CnfFormula:
    return satlib_instance("uf20-01")


@pytest.fixture(scope="session")
def compiled_paper_example(paper_formula):
    return compile_formula(paper_formula, measure=False)


@pytest.fixture(scope="session")
def compiled_paper_example_ladder(paper_formula):
    return compile_formula(paper_formula, compression=False, measure=False)


@pytest.fixture(scope="session")
def compiled_mixed(mixed_formula):
    return compile_formula(mixed_formula, measure=False)


@pytest.fixture(scope="session")
def compiled_uf20(uf20):
    return compile_formula(uf20, measure=True)
