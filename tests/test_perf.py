"""The repro.perf subsystem and the hot-path optimizations it guards.

Three concerns:

* the instrumentation itself (Profiler counters, profile dict schema,
  JSON round trip, the ``--profile`` CLI table);
* semantics preservation — the optimized pipeline must emit *exactly* the
  program the uncached pipeline emits (byte-for-byte wQasm), and the
  fully legacy pipeline (SO(3) Euler path) must stay equivalent under the
  wChecker; and
* the individual mechanisms: closed-form Euler extraction, history
  opt-out, position-key SLM lookup, zone-plan memoization, and the bench
  runner's trajectory file.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.checker import check_program
from repro.circuits.euler import zyx_euler_angles, zyx_euler_angles_so3
from repro.circuits.gates import gate_matrix
from repro.cli import main
from repro.exceptions import CircuitError
from repro.fpqa.device import FPQADevice
from repro.fpqa.geometry import position_key
from repro.fpqa.instructions import BindAtom, RamanGlobal, SlmInit
from repro.linalg import allclose_up_to_global_phase
from repro.passes.woptimizer import FPQACompiler
from repro.perf import (
    OptimizationFlags,
    Profiler,
    format_profile_table,
    run_compile_bench,
    write_bench_file,
)
from repro.qaoa import QaoaParameters
from repro.sat import to_dimacs
from repro.sat.generator import random_ksat
from repro.targets.result import CompilationResult


# ----------------------------------------------------------------------
# Profiler / profile dict
# ----------------------------------------------------------------------
class TestProfiler:
    def test_counters_accumulate(self):
        profiler = Profiler()
        profiler.add_pass("coloring", 0.25)
        profiler.add_pass("coloring", 0.25)
        profiler.add("raman_local", 0.001, count=2)
        profiler.add("raman_local", 0.003)
        profiler.hit("angles")
        profiler.miss("angles", count=3)
        profile = profiler.profile(total_seconds=1.0)
        assert profile["passes"]["coloring"]["seconds"] == 0.5
        assert profile["primitives"]["raman_local"] == {"count": 3, "seconds": 0.004}
        assert profile["caches"]["angles"] == {"hits": 1, "misses": 3}
        assert profile["total_seconds"] == 1.0

    def test_profile_is_json_safe(self):
        profiler = Profiler()
        profiler.add_pass("p", 0.1)
        profiler.add("x", 0.2)
        profiler.set_cache("c", hits=5, misses=1)
        profile = profiler.profile(total_seconds=0.3)
        assert json.loads(json.dumps(profile)) == profile

    def test_format_table_mentions_everything(self):
        profiler = Profiler()
        profiler.add_pass("clause-coloring", 0.01)
        profiler.add("rydberg", 0.002, count=7)
        profiler.set_cache("raman_angles", hits=99, misses=1)
        table = format_profile_table(profiler.profile(total_seconds=0.5))
        assert "clause-coloring" in table
        assert "rydberg" in table and "7" in table
        assert "raman_angles" in table and "99.0%" in table
        assert "total" in table

    def test_empty_profile_renders(self):
        assert "no profile" in format_profile_table({})


class TestOptimizationFlags:
    def test_coerce(self):
        assert OptimizationFlags.coerce(True) == OptimizationFlags()
        assert OptimizationFlags.coerce(None) == OptimizationFlags()
        assert OptimizationFlags.coerce(False) == OptimizationFlags.reference()
        flags = OptimizationFlags(memoize_angles=False)
        assert OptimizationFlags.coerce(flags) is flags
        with pytest.raises(TypeError):
            OptimizationFlags.coerce("fast")

    def test_reference_disables_everything(self):
        ref = OptimizationFlags.reference()
        assert not ref.closed_form_euler
        assert not ref.memoize_angles
        assert not ref.incremental_clusters
        assert ref.record_history

    def test_but_overrides(self):
        flags = OptimizationFlags.reference().but(closed_form_euler=True)
        assert flags.closed_form_euler and not flags.memoize_angles

    def test_bad_optimize_option_is_a_target_error(self, tiny_formula):
        from repro.exceptions import TargetError

        with pytest.raises(TargetError, match="optimize"):
            repro.compile(
                tiny_formula, target="fpqa", target_options={"optimize": "fast"}
            )


# ----------------------------------------------------------------------
# End-to-end: profile surfaces and round-trips
# ----------------------------------------------------------------------
class TestCompileProfile:
    @pytest.fixture(scope="class")
    def result(self, tiny_formula):
        return repro.compile(tiny_formula, target="fpqa")

    def test_profile_present_with_passes_and_primitives(self, result):
        profile = result.profile
        assert profile is not None
        assert "codegen" in profile["passes"]
        assert "clause-coloring" in profile["passes"]
        assert profile["primitives"]["raman_local"]["count"] > 0
        assert profile["primitives"]["rydberg"]["count"] > 0
        assert "rydberg_clusters" in profile["caches"]

    def test_profile_round_trips_through_json(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        restored = CompilationResult.from_dict(payload)
        assert restored.profile == result.profile

    def test_profile_none_for_targets_without_instrumentation(self, tiny_formula):
        result = repro.compile(tiny_formula, target="atomique")
        assert result.profile is None
        restored = CompilationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored.profile is None


class TestCliProfile:
    def test_compile_profile_prints_table(self, tmp_path, tiny_formula, capsys):
        cnf = tmp_path / "tiny.cnf"
        cnf.write_text(to_dimacs(tiny_formula))
        out = tmp_path / "out.wqasm"
        assert main(["compile", str(cnf), "-o", str(out), "--profile"]) == 0
        err = capsys.readouterr().err
        assert "codegen" in err
        assert "raman_local" in err
        assert "hit rate" in err


# ----------------------------------------------------------------------
# Semantics preservation
# ----------------------------------------------------------------------
class TestSemanticsPreserved:
    """The optimizations must not change the emitted program."""

    @pytest.fixture(scope="class")
    def formula(self):
        return random_ksat(24, 100, seed=11)

    @pytest.fixture(scope="class")
    def parameters(self):
        # Three layers so the zone-plan memoization actually fires: layer 1
        # starts from the home row, layer 2 from the steady parked state,
        # and layer 3 sees that state again (the first cache hit).
        return QaoaParameters((0.7, 0.4, 0.6), (0.35, 0.2, 0.1))

    def test_memoized_pipeline_emits_identical_program(self, formula, parameters):
        optimized = FPQACompiler(optimize=True).compile(formula, parameters)
        uncached = FPQACompiler(
            # Same angle math, every cache and fast path disabled.
            optimize=OptimizationFlags.reference().but(closed_form_euler=True)
        ).compile(formula, parameters)
        assert optimized.program.to_wqasm() == uncached.program.to_wqasm()
        assert optimized.profile["caches"]["raman_angles"]["hits"] > 0
        assert optimized.profile["caches"]["zone_plans"]["hits"] == 1
        assert optimized.profile["caches"]["rydberg_clusters"]["hits"] > 0

    def test_optimized_program_passes_wchecker(self, formula, parameters):
        result = FPQACompiler(optimize=True).compile(formula, parameters)
        report = check_program(result.program, reference=result.native_circuit)
        assert report.ok, report.operation_failures[:3]

    def test_legacy_pipeline_still_equivalent(self, formula):
        """Full reference mode (SO(3) angles) stays checker-clean too."""
        result = FPQACompiler(optimize=False).compile(formula)
        report = check_program(result.program, reference=result.native_circuit)
        assert report.ok, report.operation_failures[:3]


# ----------------------------------------------------------------------
# Closed-form Euler extraction
# ----------------------------------------------------------------------
class TestClosedFormEuler:
    def test_matches_so3_reference_on_random_unitaries(self):
        rng = np.random.default_rng(42)
        for _ in range(200):
            mat = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
            unitary, _ = np.linalg.qr(mat)
            fast = zyx_euler_angles(unitary)
            slow = zyx_euler_angles_so3(unitary)
            rec_fast = gate_matrix("raman", fast)
            rec_slow = gate_matrix("raman", slow)
            assert allclose_up_to_global_phase(rec_fast, unitary, atol=1e-9)
            assert allclose_up_to_global_phase(rec_fast, rec_slow, atol=1e-9)

    def test_gimbal_lock_cases(self):
        for name, params in (
            ("h", ()),
            ("ry", (np.pi / 2,)),
            ("ry", (-np.pi / 2,)),
        ):
            unitary = gate_matrix(name, params)
            angles = zyx_euler_angles(unitary)
            assert angles[0] == 0.0  # roll folded into yaw at the pole
            assert allclose_up_to_global_phase(
                gate_matrix("raman", angles), unitary, atol=1e-9
            )
        # X is a plain pi rotation about x — not gimbal-locked: pure roll.
        x_angles = zyx_euler_angles(gate_matrix("x"))
        assert x_angles == pytest.approx((np.pi, 0.0, 0.0))

    def test_rejects_non_square_and_singular(self):
        with pytest.raises(CircuitError):
            zyx_euler_angles(np.zeros((2, 2)))
        with pytest.raises(CircuitError):
            zyx_euler_angles(np.eye(3))


# ----------------------------------------------------------------------
# Device fast paths
# ----------------------------------------------------------------------
class TestDeviceFastPaths:
    def _loaded_device(self, **kwargs) -> FPQADevice:
        device = FPQADevice(**kwargs)
        positions = tuple((10.0 * i, 0.0) for i in range(4))
        device.apply(SlmInit(positions))
        for qubit in range(4):
            device.apply(BindAtom(qubit=qubit, slm_index=qubit))
        return device

    def test_history_recorded_by_default(self):
        device = self._loaded_device()
        device.apply(RamanGlobal(0.1, 0.2, 0.3))
        assert len(device.history) == 6

    def test_history_opt_out(self):
        device = self._loaded_device(record_history=False)
        device.apply(RamanGlobal(0.1, 0.2, 0.3))
        assert device.history == []

    def test_codegen_device_does_not_accumulate_history(self):
        # The program stream itself is the record; the compiler-internal
        # device must not keep a second unbounded copy (default flags opt
        # out), while the checker's replay devices keep the default on.
        assert OptimizationFlags().record_history is False
        assert FPQACompiler().flags.record_history is False
        assert FPQADevice().record_history is True

    def test_slm_index_at_matches_position_key(self):
        device = self._loaded_device()
        for index, position in enumerate(device.slm_positions):
            assert device.slm_index_at(*position) == index
            # Sub-rounding jitter maps to the same key, hence same trap.
            assert device.slm_index_at(position[0] + 1e-9, position[1]) == index
        assert device.slm_index_at(1234.5, 0.0) is None
        assert position_key((1.0000004, 2.0)) == position_key((1.0, 2.0))

    def test_cluster_cache_invalidated_by_movement(self):
        device = self._loaded_device()
        first = device.resolve_rydberg_clusters()
        again = device.resolve_rydberg_clusters()
        assert first == again
        assert device.cluster_cache_hits == 1
        assert device.cluster_resolutions == 1
        device.lose_atom(3)
        assert device.resolve_rydberg_clusters() == []
        assert device.cluster_resolutions == 2


# ----------------------------------------------------------------------
# Bench runner
# ----------------------------------------------------------------------
class TestBenchRunner:
    def test_writes_and_appends_trajectory(self, tmp_path):
        run = run_compile_bench(
            sizes=(8,), repeats=1, include_reference=True, seed=3
        )
        (cell,) = run["cells"]
        assert cell["target"] == "fpqa"
        assert cell["optimized_seconds"] > 0
        assert cell["reference_seconds"] > 0
        assert cell["speedup"] == cell["reference_seconds"] / cell["optimized_seconds"]
        path = tmp_path / "BENCH_compile.json"
        write_bench_file(run, path)
        write_bench_file(run, path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert len(payload["runs"]) == 2

    def test_corrupt_trajectory_is_preserved_not_crashed(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{truncated")
        write_bench_file({"cells": []}, path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1 and len(payload["runs"]) == 1
        # The unreadable history moved aside instead of vanishing.
        assert (tmp_path / "bench.json.bak").read_text().startswith("{truncated")

    def test_schema_without_runs_list_is_treated_as_corrupt(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text('{"schema": 1}')
        write_bench_file({"cells": []}, path)
        payload = json.loads(path.read_text())
        assert len(payload["runs"]) == 1
        assert (tmp_path / "bench.json.bak").exists()

    def test_cli_entrypoint(self, tmp_path):
        from repro.perf.bench import main as bench_main

        path = tmp_path / "bench.json"
        rc = bench_main(
            ["--sizes", "8", "--repeats", "1", "--no-reference",
             "--label", "test", "-o", str(path)]
        )
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["runs"][0]["label"] == "test"
        assert payload["runs"][0]["cells"][0]["reference_seconds"] is None
