"""Rydberg cluster resolution: spatial hash vs brute force equivalence.

The hot path resolves interaction clusters with a spatial hash plus
dirty tracking; the original dense O(n^2) resolver is kept as
``FPQADevice._resolve_brute_force``.  These randomized-geometry property
tests pin the two to *identical* results — same clusters, same member
order, same positions, and the same accept/reject verdict on the
equidistance pre-condition (§7).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import FPQAConstraintError
from repro.fpqa.device import FPQADevice
from repro.fpqa.hardware import FPQAHardwareParams
from repro.fpqa.instructions import BindAtom, SlmInit


def _random_positions(
    rng: random.Random, count: int, box: float, spacing: float
) -> list[tuple[float, float]]:
    """Rejection-sample ``count`` points at pairwise distance >= spacing."""
    positions: list[tuple[float, float]] = []
    attempts = 0
    while len(positions) < count and attempts < 20_000:
        attempts += 1
        candidate = (rng.uniform(0.0, box), rng.uniform(0.0, box))
        if all(math.dist(candidate, p) >= spacing + 1e-6 for p in positions):
            positions.append(candidate)
    assert len(positions) == count, "rejection sampling starved; widen the box"
    return positions


def _device_with(positions: list[tuple[float, float]], **kwargs) -> FPQADevice:
    device = FPQADevice(**kwargs)
    device.apply(SlmInit(tuple(positions)))
    for qubit in range(len(positions)):
        device.apply(BindAtom(qubit=qubit, slm_index=qubit))
    return device


def _resolve_both(positions):
    """(spatial outcome, brute outcome); outcomes are clusters or 'raise'."""
    outcomes = []
    for resolver in ("_resolve_spatial_hash", "_resolve_brute_force"):
        device = _device_with(positions)
        try:
            outcomes.append(getattr(device, resolver)())
        except FPQAConstraintError:
            outcomes.append("raise")
    return outcomes


class TestClusterEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_randomized_geometry_identical_clusters(self, seed):
        """Dense layouts: many interacting pairs/runs of atoms.

        The box is sized so a good fraction of pairs land within the
        8 um Rydberg radius; geometries whose >=3-atom clusters violate
        the equidistance tolerance must be rejected by *both* resolvers.
        """
        rng = random.Random(seed)
        count = rng.randint(2, 40)
        # ~5.6-8 um typical nearest-neighbor spacing: clusters are common.
        box = 7.0 * math.sqrt(count)
        positions = _random_positions(rng, count, box, spacing=5.0)
        spatial, brute = _resolve_both(positions)
        assert spatial == brute

    @pytest.mark.parametrize("seed", range(25, 40))
    def test_sparse_geometry_identical_clusters(self, seed):
        """Sparse layouts: mostly singletons, occasional pairs."""
        rng = random.Random(seed)
        count = rng.randint(2, 60)
        positions = _random_positions(rng, count, 14.0 * math.sqrt(count), 5.0)
        spatial, brute = _resolve_both(positions)
        assert spatial == brute

    def test_equilateral_triangle_accepted_identically(self):
        side = 6.0
        positions = [
            (0.0, 0.0),
            (side, 0.0),
            (side / 2.0, side * math.sqrt(3.0) / 2.0),
        ]
        spatial, brute = _resolve_both(positions)
        assert spatial == brute
        assert spatial != "raise"
        (cluster,) = spatial
        assert cluster.qubits == (0, 1, 2)

    def test_equidistance_rejection_identical(self):
        # Collinear triple: pairwise distances 5.5 / 5.5 / 11 um spread
        # far beyond the 0.5 um tolerance -> both resolvers must reject.
        hardware = FPQAHardwareParams(rydberg_radius_um=12.0)
        positions = [(0.0, 0.0), (5.5, 0.0), (11.0, 0.0)]
        for incremental in (True, False):
            device = _device_with(
                positions, hardware=hardware, incremental_clusters=incremental
            )
            with pytest.raises(FPQAConstraintError, match="not equidistant"):
                device.resolve_rydberg_clusters()

    def test_boundary_distance_is_inclusive_in_both(self):
        """Atoms exactly at the Rydberg radius interact in both paths."""
        radius = FPQAHardwareParams().rydberg_radius_um
        positions = [(0.0, 0.0), (radius, 0.0)]
        spatial, brute = _resolve_both(positions)
        assert spatial == brute
        assert len(spatial) == 1

    def test_incremental_cache_tracks_movement(self):
        """Dirty tracking: cache hits only while no atom moved."""
        positions = [(0.0, 0.0), (6.0, 0.0), (40.0, 0.0), (46.0, 0.0)]
        device = _device_with(positions)
        first = device.resolve_rydberg_clusters()
        assert {c.qubits for c in first} == {(0, 1), (2, 3)}
        assert device.resolve_rydberg_clusters() == first
        assert device.cluster_cache_hits == 1
        device.lose_atom(1)
        second = device.resolve_rydberg_clusters()
        assert {c.qubits for c in second} == {(2, 3)}
        assert device.cluster_resolutions == 2
        # Every recomputation still matches the dense reference.
        assert second == device._resolve_brute_force()
