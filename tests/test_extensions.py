"""Tests for extension features: weighted MAX-SAT, random circuits,
the DPQA interchange format, and the artifact runner."""

import itertools
import json

import pytest

from repro.baselines.dpqa_format import circuit_to_dpqa_json, dpqa_json_to_pairs
from repro.circuits import QuantumCircuit, circuits_equivalent
from repro.circuits.random_circuits import random_circuit, random_diagonal_circuit
from repro.exceptions import CompilationError, SatError
from repro.passes import compile_formula, nativize_circuit
from repro.qaoa import qaoa_circuit
from repro.sat import CnfFormula, formula_polynomial
from repro.sat.cnf import Clause


class TestWeightedMaxSat:
    def test_weight_validation(self):
        with pytest.raises(SatError):
            Clause((1,), weight=0.0)
        with pytest.raises(SatError):
            Clause((1,), weight=-2.0)

    def test_weighted_objective(self):
        formula = CnfFormula(
            num_vars=1,
            clauses=[Clause((1,), weight=3.0), Clause((-1,), weight=1.0)],
        )
        assert formula.weighted_satisfied([True]) == 3.0
        assert formula.weighted_satisfied([False]) == 1.0

    def test_weighted_polynomial_counts_weighted_violations(self):
        formula = CnfFormula(
            num_vars=2,
            clauses=[Clause((1, 2), weight=2.0), Clause((-2,), weight=5.0)],
        )
        poly = formula_polynomial(formula)
        for bits in itertools.product([False, True], repeat=2):
            total_weight = sum(c.weight for c in formula.clauses)
            expected = total_weight - formula.weighted_satisfied(list(bits))
            assert poly.evaluate(list(bits)) == pytest.approx(expected)

    @pytest.mark.parametrize("compression", [True, False])
    def test_weighted_pipeline_equivalence(self, compression):
        formula = CnfFormula(
            num_vars=4,
            clauses=[
                Clause((-1, -2, -3), weight=2.5),
                Clause((2, 4), weight=0.5),
                Clause((3,), weight=3.0),
            ],
            name="weighted",
        )
        result = compile_formula(formula, compression=compression, measure=False)
        assert circuits_equivalent(
            result.program.logical_circuit(), result.native_circuit
        )

    def test_weighted_qaoa_differs_from_unweighted(self):
        heavy = CnfFormula(num_vars=2, clauses=[Clause((1, 2), weight=4.0)])
        light = CnfFormula(num_vars=2, clauses=[Clause((1, 2), weight=1.0)])
        assert not circuits_equivalent(qaoa_circuit(heavy), qaoa_circuit(light))


class TestRandomCircuits:
    def test_deterministic_for_seed(self):
        assert random_circuit(4, 20, seed=9) == random_circuit(4, 20, seed=9)

    def test_differs_across_seeds(self):
        assert random_circuit(4, 20, seed=1) != random_circuit(4, 20, seed=2)

    def test_gate_count(self):
        assert len(random_circuit(5, 33, seed=0)) == 33

    def test_max_arity_respected(self):
        circuit = random_circuit(5, 40, seed=3, max_arity=2)
        assert all(len(i.qubits) <= 2 for i in circuit.instructions)

    def test_measure_flag(self):
        circuit = random_circuit(3, 5, seed=0, measure=True)
        assert circuit.count_ops()["measure"] == 3

    def test_diagonal_circuit_is_diagonal(self):
        import numpy as np

        from repro.circuits import circuit_unitary

        circuit = random_diagonal_circuit(4, 15, seed=4)
        unitary = circuit_unitary(circuit)
        off_diagonal = unitary - np.diag(np.diag(unitary))
        assert np.allclose(off_diagonal, 0.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_nativize_preserves_random_circuits(self, seed):
        """Fuzz: native synthesis must preserve arbitrary circuits."""
        circuit = random_circuit(4, 25, seed=seed)
        assert circuits_equivalent(circuit, nativize_circuit(circuit))


class TestDpqaFormat:
    def test_roundtrip(self):
        circuit = QuantumCircuit(4).cz(0, 1).cz(2, 3).cz(0, 2).h(1)
        text = circuit_to_dpqa_json(circuit, name="demo")
        num_qubits, sets = dpqa_json_to_pairs(text)
        assert num_qubits == 4
        assert sum(len(s) for s in sets) == 3

    def test_sets_are_disjoint(self):
        circuit = QuantumCircuit(4)
        for a, b in [(0, 1), (2, 3), (0, 2), (1, 3), (0, 3)]:
            circuit.cz(a, b)
        _, sets = dpqa_json_to_pairs(circuit_to_dpqa_json(circuit))
        for gate_set in sets:
            qubits: set[int] = set()
            for pair in gate_set:
                assert not (set(pair) & qubits)
                qubits |= set(pair)

    def test_metadata_counts(self):
        circuit = QuantumCircuit(3).h(0).cz(0, 1).h(2)
        payload = json.loads(circuit_to_dpqa_json(circuit))
        assert payload["metadata"]["num_1q_gates"] == 2
        assert payload["metadata"]["num_2q_gates"] == 1

    def test_three_qubit_gate_rejected(self):
        circuit = QuantumCircuit(3).ccz(0, 1, 2)
        with pytest.raises(CompilationError):
            circuit_to_dpqa_json(circuit)

    def test_malformed_json_rejected(self):
        with pytest.raises(CompilationError):
            dpqa_json_to_pairs("{not json")

    def test_overlapping_set_rejected(self):
        bad = json.dumps(
            {"num_qubits": 3, "gate_sets": [[[0, 1], [1, 2]]]}
        )
        with pytest.raises(CompilationError):
            dpqa_json_to_pairs(bad)


class TestArtifactRunner:
    def test_quick_artifact_run(self):
        from repro.evaluation import EvaluationConfig
        from repro.evaluation.artifact import run_artifact

        config = EvaluationConfig(
            compilers=("weaver", "atomique"),
            fixed_instances=("uf20-01",),
            scaling_sizes=(20,),
            instances_per_size=1,
        )
        report = run_artifact(config, include_ccz_sweep=False, verbose=False)
        assert set(report.figures) >= {"fig8a", "fig11a", "fig12a", "table2"}
        rendered = report.render()
        assert "Figure 8(a)" in rendered
        assert "Figure 12(b)" in rendered
