"""The device-profile subsystem: registry, validation, cost models, provenance."""

import json
import time

import pytest

import repro
from repro.devices import (
    DeviceProfile,
    cost_model_for,
    device_info,
    get_device,
    list_devices,
    load_spec_file,
    profile_from_spec,
    register_device,
)
from repro.devices.registry import resolve_device
from repro.exceptions import (
    DeviceSpecError,
    TargetError,
    UnknownDeviceError,
)
from repro.fpqa import FPQAHardwareParams
from repro.metrics import program_duration_us, program_eps
from repro.targets.result import CompilationResult

BUILTIN_FPQA = ("rubidium-baseline", "aquila-256", "rubidium-nextgen", "zone-lite-16")
BUILTIN_SC = ("washington-127", "washington-127-cal", "heavyhex-23")


def _seed_program_eps(program, hardware, duration_us):
    """Replica of the pre-devices ``program_eps``: logs taken per instruction."""
    import math

    from repro.fpqa.instructions import (
        RamanGlobal,
        RamanLocal,
        RydbergPulse,
        Transfer,
    )

    log_eps = 0.0
    previous_was_transfer = False
    for operation in program.operations:
        for instruction in operation.instructions:
            is_transfer = isinstance(instruction, Transfer)
            if is_transfer and not previous_was_transfer:
                log_eps += math.log(hardware.fidelity_transfer)
            previous_was_transfer = is_transfer
            if isinstance(instruction, RamanLocal):
                log_eps += math.log(hardware.fidelity_raman_local)
            elif isinstance(instruction, RamanGlobal):
                log_eps += math.log(hardware.fidelity_raman_global)
            elif isinstance(instruction, RydbergPulse):
                largest = max(
                    (len(gate.qubits) for gate in operation.gates), default=0
                )
                if largest >= 2:
                    log_eps += math.log(hardware.cluster_fidelity(largest))
    log_eps += -duration_us * program.num_qubits / hardware.t2_us
    if program.measured:
        log_eps += program.num_qubits * math.log(hardware.fidelity_measurement)
    return math.exp(log_eps)


class TestRegistry:
    def test_builtin_catalog(self):
        names = list_devices()
        assert len(names) >= 6
        for name in BUILTIN_FPQA + BUILTIN_SC:
            assert name in names

    def test_kind_filter(self):
        assert set(list_devices(kind="fpqa")) >= set(BUILTIN_FPQA)
        assert set(list_devices(kind="superconducting")) >= set(BUILTIN_SC)
        assert not set(list_devices(kind="fpqa")) & set(BUILTIN_SC)

    def test_aliases(self):
        assert get_device("default").name == "rubidium-baseline"
        assert get_device("washington").name == "washington-127"

    def test_unknown_device(self):
        with pytest.raises(UnknownDeviceError, match="unknown device"):
            get_device("made-up-machine")

    def test_instance_passthrough(self):
        profile = get_device("rubidium-baseline")
        assert resolve_device(profile) is profile

    def test_register_and_duplicate(self):
        profile = DeviceProfile(
            name="test-register-lab", kind="fpqa", params={"fidelity_cz": 0.993}
        )
        register_device(profile)
        try:
            assert get_device("test-register-lab") == profile
            with pytest.raises(Exception, match="already registered"):
                register_device(profile)
            register_device(profile, replace=True)  # replace is allowed
        finally:
            from repro.devices import registry

            registry._REGISTRY.pop("test-register-lab", None)

    def test_device_info_shape(self):
        infos = device_info()
        assert {info["name"] for info in infos} == set(list_devices())
        one = device_info("zone-lite-16")[0]
        assert one["kind"] == "fpqa"
        assert one["max_qubits"] == 16


class TestCompileEveryDevice:
    def test_every_fpqa_device_compiles(self, tiny_formula):
        for name in list_devices(kind="fpqa"):
            result = repro.compile(tiny_formula, target="fpqa", device=name)
            assert result.succeeded, (name, result.error)
            assert result.device == name
            assert 0.0 < result.eps <= 1.0

    def test_every_superconducting_device_compiles(self, tiny_formula):
        for name in list_devices(kind="superconducting"):
            result = repro.compile(
                tiny_formula, target="superconducting", device=name
            )
            assert result.succeeded, (name, result.error)
            assert result.device == name

    def test_target_inferred_from_device_kind(self, tiny_formula):
        result = repro.compile(tiny_formula, device="washington-127")
        assert result.target == "superconducting"

    def test_devices_rank_by_fidelity(self, tiny_formula):
        eps = {
            name: repro.compile(tiny_formula, target="fpqa", device=name).eps
            for name in ("rubidium-nextgen", "rubidium-baseline", "zone-lite-16")
        }
        assert eps["rubidium-nextgen"] > eps["rubidium-baseline"] > eps["zone-lite-16"]

    def test_capacity_enforced(self, uf20):
        with pytest.raises(repro.RoutingError, match="capacity"):
            repro.compile(uf20, target="fpqa", device="zone-lite-16")

    def test_kind_mismatch_is_target_error(self, tiny_formula):
        with pytest.raises(TargetError, match="superconducting"):
            repro.compile(tiny_formula, target="fpqa", device="washington-127")


class TestValidation:
    def test_radius_inside_spacing(self):
        with pytest.raises(DeviceSpecError, match="Rydberg radius"):
            DeviceProfile(
                name="bad", kind="fpqa",
                params={"min_trap_spacing_um": 9.0, "rydberg_radius_um": 5.0},
            )

    def test_safe_spacing_inside_radius(self):
        with pytest.raises(DeviceSpecError, match="safe spacing"):
            DeviceProfile(
                name="bad", kind="fpqa", params={"safe_spacing_um": 6.0}
            )

    def test_negative_duration(self):
        with pytest.raises(DeviceSpecError, match=">= 0"):
            DeviceProfile(
                name="bad", kind="fpqa", params={"transfer_duration_us": -1.0}
            )

    def test_fidelity_out_of_range(self):
        with pytest.raises(DeviceSpecError, match="fidelity_cz"):
            DeviceProfile(name="bad", kind="fpqa", params={"fidelity_cz": 1.2})

    def test_empty_moves_slower_than_loaded(self):
        with pytest.raises(DeviceSpecError, match="empty-trap"):
            DeviceProfile(
                name="bad", kind="fpqa",
                params={
                    "aod_speed_um_per_us": 10.0,
                    "aod_empty_speed_um_per_us": 1.0,
                },
            )

    def test_unknown_parameter_rejected(self):
        with pytest.raises(DeviceSpecError, match="unknown FPQA parameter"):
            DeviceProfile(name="bad", kind="fpqa", params={"warp_factor": 9})

    def test_unknown_kind_rejected(self):
        with pytest.raises(DeviceSpecError, match="unknown kind"):
            DeviceProfile(name="bad", kind="photonic")

    def test_sc_error_out_of_range(self):
        with pytest.raises(DeviceSpecError, match="error_2q"):
            DeviceProfile(
                name="bad", kind="superconducting", params={"error_2q": 1.5}
            )

    def test_sc_unknown_coupling_kind(self):
        with pytest.raises(DeviceSpecError, match="coupling kind"):
            DeviceProfile(
                name="bad", kind="superconducting",
                params={"coupling": {"kind": "torus"}},
            )

    def test_sc_max_qubits_must_match_coupling(self):
        with pytest.raises(DeviceSpecError, match="max_qubits"):
            DeviceProfile(
                name="bad", kind="superconducting", max_qubits=5,
                params={"coupling": {"kind": "line", "num_qubits": 7}},
            )


class TestSpecFiles:
    def test_json_spec_round_trip(self, tmp_path):
        spec = {
            "name": "spec-file-device",
            "kind": "fpqa",
            "description": "from disk",
            "max_qubits": 32,
            "params": {"fidelity_ccz": 0.97},
        }
        path = tmp_path / "dev.json"
        path.write_text(json.dumps(spec))
        profile = load_spec_file(path)
        assert profile.name == "spec-file-device"
        assert profile.params["fidelity_ccz"] == 0.97
        # Defaults are resolved into the stored parameter set.
        assert profile.params["rydberg_radius_um"] == 8.0

    def test_toml_builtin_loaded(self):
        profile = get_device("zone-lite-16")
        assert profile.source.endswith("zone-lite-16.toml")
        assert profile.hardware.aod_speed_um_per_us == 0.3

    def test_malformed_json_is_spec_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DeviceSpecError):
            load_spec_file(path)

    def test_unknown_top_level_key(self):
        with pytest.raises(DeviceSpecError, match="unknown"):
            profile_from_spec({"name": "x", "kind": "fpqa", "color": "red"})


class TestProvenance:
    def test_profile_round_trip(self):
        for name in list_devices():
            profile = get_device(name)
            assert DeviceProfile.from_dict(profile.to_dict()) == profile

    def test_result_carries_profile(self, tiny_formula):
        result = repro.compile(tiny_formula, target="fpqa", device="aquila-256")
        payload = json.loads(json.dumps(result.to_dict()))
        restored = CompilationResult.from_dict(payload)
        assert restored.device == "aquila-256"
        profile = DeviceProfile.from_dict(restored.device_profile)
        assert profile == get_device("aquila-256")
        # The reconstructed profile yields the exact hardware numbers.
        assert profile.hardware == get_device("aquila-256").hardware

    def test_deviceless_result_round_trips(self, tiny_formula):
        result = repro.compile(tiny_formula, target="fpqa")
        restored = CompilationResult.from_dict(result.to_dict())
        assert restored.device is None
        assert restored.device_profile is None


class TestCostModel:
    def test_shared_per_hardware(self):
        hw = FPQAHardwareParams()
        assert cost_model_for(hw) is cost_model_for(FPQAHardwareParams())
        profile = get_device("rubidium-baseline")
        assert profile.cost_model is cost_model_for(hw)

    def test_matches_metrics_entrypoints(self, compiled_uf20):
        program = compiled_uf20.program
        hw = FPQAHardwareParams()
        model = cost_model_for(hw)
        assert model.program_duration_us(program) == pytest.approx(
            program_duration_us(program, hw)
        )
        assert model.program_eps(program) == pytest.approx(
            program_eps(program, hw)
        )

    def test_geometry_cached_once(self):
        from repro.fpqa.geometry import zone_layout

        hw = FPQAHardwareParams()
        assert zone_layout(hw) is zone_layout(FPQAHardwareParams())
        model = cost_model_for(hw)
        assert model.geometry is model.geometry

    def test_precompute_beats_seed_path(self, compiled_uf20):
        """Repeated evaluation via the precomputed tables beats the seed path.

        The seed metrics called ``math.log(hardware.fidelity_*)`` on every
        instruction of every call; the cost model hoists those into
        per-device constants.  ``_seed_program_eps`` below is a faithful
        replica of the seed implementation: first assert the numbers are
        identical, then that the table-driven walk is faster (best of
        several rounds on both sides, so scheduler noise on a 1-CPU box
        cannot flip the comparison; the observed gap is ~1.4x).
        """
        program = compiled_uf20.program
        hw = FPQAHardwareParams()
        model = cost_model_for(hw)
        duration = model.program_duration_us(program)
        assert model.program_eps(program, duration) == pytest.approx(
            _seed_program_eps(program, hw, duration), rel=1e-12
        )

        def best_of(func, rounds, evaluations):
            times = []
            for _ in range(rounds):
                start = time.perf_counter()
                for _ in range(evaluations):
                    func()
                times.append(time.perf_counter() - start)
            return min(times)

        def measure(rounds, evaluations):
            seed = best_of(
                lambda: _seed_program_eps(program, hw, duration),
                rounds, evaluations,
            )
            table = best_of(
                lambda: model.program_eps(program, duration), rounds, evaluations,
            )
            return seed, table

        model.program_eps(program, duration)  # warm the interpreter
        seed_time, table_time = measure(rounds=5, evaluations=20)
        if table_time >= seed_time:  # pragma: no cover — noisy-runner fallback
            # One preempted round shouldn't fail CI: re-measure longer so
            # the ~1.4x structural gap dominates scheduler noise.
            seed_time, table_time = measure(rounds=7, evaluations=100)
        assert table_time < seed_time


class TestSessionDeviceSweep:
    def test_grid_order_and_cache(self, tiny_formula):
        session = repro.CompilerSession()
        devices = ["rubidium-baseline", "rubidium-nextgen"]
        rows = session.compile_many([tiny_formula], targets="fpqa", devices=devices)
        assert [row.device for row in rows] == devices
        assert all(row.succeeded for row in rows)
        again = session.compile_many(
            [tiny_formula], targets="fpqa", devices=devices
        )
        assert all(row.cached for row in again)

    def test_device_on_unsupporting_target_is_error_row(self, tiny_formula):
        session = repro.CompilerSession()
        rows = session.compile_many(
            [tiny_formula], targets="atomique", devices=["rubidium-baseline"]
        )
        assert rows[0].error is not None
        assert "device" in rows[0].error

    def test_session_compile_single_device(self, tiny_formula):
        session = repro.CompilerSession()
        row = session.compile(tiny_formula, target="fpqa", device="aquila-256")
        assert row.device == "aquila-256"
        assert session.compile(
            tiny_formula, target="fpqa", device="aquila-256"
        ).cached


class TestEvaluationDeviceAxis:
    def test_result_store_device_cells(self):
        from repro.evaluation import EvaluationConfig, ResultStore

        config = EvaluationConfig(
            fixed_instances=("uf20-01",), devices=("rubidium-nextgen",)
        )
        store = ResultStore(config)
        rows = store.device_sweep_results("rubidium-nextgen")
        assert rows[0].compiler == "weaver@rubidium-nextgen"
        assert rows[0].succeeded
        assert rows[0].extra.get("device") == "rubidium-nextgen"
        # Cached: a second call does not recompile.
        assert store.device_sweep_results("rubidium-nextgen")[0] is rows[0]

    def test_device_sweep_table(self):
        from repro.evaluation import EvaluationConfig, ResultStore
        from repro.evaluation.artifact import device_sweep_table

        config = EvaluationConfig(
            fixed_instances=("uf20-01",),
            devices=("rubidium-baseline", "rubidium-nextgen"),
        )
        store = ResultStore(config)
        rows = device_sweep_table(store, config.devices)
        assert [row["device"] for row in rows] == list(config.devices)
        assert rows[1]["eps"] > rows[0]["eps"]
