"""Smoke tests for the installable entry points.

``python -m repro`` and the ``weaver`` console script are the two ways a
user reaches the CLI without writing code; neither goes through
``repro.cli.main`` in-process (``__main__`` calls ``sys.exit`` at import
time), so they are exercised as real subprocesses.
"""

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(*args: str, entry=None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = entry or [sys.executable, "-m", "repro"]
    return subprocess.run(
        [*command, *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )


class TestPythonDashM:
    def test_targets_listing(self):
        proc = _run("targets")
        assert proc.returncode == 0, proc.stderr
        assert "fpqa" in proc.stdout
        assert "superconducting" in proc.stdout

    def test_devices_listing(self):
        proc = _run("devices")
        assert proc.returncode == 0, proc.stderr
        assert "rubidium-baseline" in proc.stdout

    def test_no_arguments_is_usage_error(self):
        proc = _run()
        assert proc.returncode == 2
        assert "usage" in proc.stderr.lower()

    def test_unknown_target_exit_code(self, tmp_path):
        cnf = tmp_path / "t.cnf"
        cnf.write_text("p cnf 2 1\n1 -2 0\n")
        proc = _run("compile", str(cnf), "--target", "pixie")
        assert proc.returncode == 2
        assert "unknown target" in proc.stderr

    def test_compile_emits_wqasm(self, tmp_path):
        cnf = tmp_path / "t.cnf"
        cnf.write_text("p cnf 3 2\n1 -2 3 0\n-1 2 3 0\n")
        out = tmp_path / "out.wqasm"
        proc = _run("compile", str(cnf), "-o", str(out))
        assert proc.returncode == 0, proc.stderr
        assert out.read_text().startswith("OPENQASM 3.0;")


@pytest.mark.skipif(
    shutil.which("weaver") is None,
    reason="weaver console script not installed (pip install -e .)",
)
class TestConsoleScript:
    def test_targets_listing(self):
        proc = _run("targets", entry=["weaver"])
        assert proc.returncode == 0, proc.stderr
        assert "fpqa" in proc.stdout
