"""Packaging for the Weaver reproduction.

Installs the ``repro`` package from ``src/`` and a ``weaver`` console
entry point (``weaver compile problem.cnf --target fpqa``).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

ROOT = Path(__file__).resolve().parent


def _version() -> str:
    text = (ROOT / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"$', text, re.MULTILINE)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="weaver-repro",
    version=_version(),
    description=(
        "Reproduction of Weaver: a retargetable compiler framework for "
        "FPQA quantum architectures (CGO 2025)"
    ),
    long_description=(ROOT / "README.md").read_text(encoding="utf-8")
    if (ROOT / "README.md").exists()
    else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
        "networkx>=3.0",
    ],
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "pytest-cov>=4",
            "hypothesis>=6",
        ],
        "lint": [
            "ruff>=0.4",
            "mypy>=1.8",
        ],
    },
    entry_points={
        "console_scripts": [
            "weaver = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.11",
        "Topic :: Scientific/Engineering :: Physics",
        "License :: OSI Approved :: MIT License",
    ],
)
